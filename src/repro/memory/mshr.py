"""Miss-status holding registers.

MSHRs bound the number of outstanding misses a cache can sustain.
Secondary misses to an already-pending line merge into the existing
entry; when all entries are busy a new primary miss must wait for the
earliest outstanding fill to complete.
"""

from __future__ import annotations


class MshrFile:
    """Timestamp-based MSHR file.

    Entries are ``line_addr -> fill_complete_cycle``.  Entries whose fill
    time has passed are free; expiry is lazy (cleaned on allocation).
    """

    __slots__ = ("n_entries", "_pending", "sanitizer", "observer", "obs_name")

    def __init__(self, n_entries: int):
        if n_entries < 1:
            raise ValueError("need at least one MSHR")
        self.n_entries = n_entries
        self._pending: dict[int, int] = {}
        #: Optional :class:`repro.verify.sanitizer.RuntimeSanitizer`.
        self.sanitizer = None
        #: Optional :class:`repro.obs.events.PipelineObserver`; the
        #: attach walker renames ``obs_name`` to the serving cache
        #: (``l1.mshr``, ``l2.mshr``, ``icache.mshr``).
        self.observer = None
        self.obs_name = "mshr"

    def _reap(self, now: int) -> None:
        if len(self._pending) >= self.n_entries:
            expired = [a for a, t in self._pending.items() if t <= now]
            for addr in expired:
                del self._pending[addr]

    def pending_fill(self, line_addr: int, now: int) -> int | None:
        """Fill-completion cycle if this line already has a miss in flight."""
        fill = self._pending.get(line_addr)
        if fill is not None and fill > now:
            return fill
        return None

    def earliest_free(self, now: int) -> int:
        """First cycle at which an entry can be allocated."""
        self._reap(now)
        if len(self._pending) < self.n_entries:
            return now
        return min(self._pending.values())

    def allocate(self, line_addr: int, fill_cycle: int, now: int) -> None:
        """Track a new outstanding miss (caller ensured a free entry)."""
        self._reap(now)
        if len(self._pending) >= self.n_entries:
            raise RuntimeError("MSHR allocation with no free entry")
        self._pending[line_addr] = fill_cycle
        if self.sanitizer is not None:
            self.sanitizer.check_mshr(self, now)
        if self.observer is not None:
            self.observer.mem_note(self.obs_name, "allocate", -1, now)

    def outstanding(self, now: int) -> int:
        """Number of misses still in flight at ``now``."""
        return sum(1 for t in self._pending.values() if t > now)
