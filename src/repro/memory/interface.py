"""Shared types and the abstract interface of the memory models.

The SMT core calls the memory system at issue time of each memory
operation and at fetch time for instruction groups; the system returns
the cycle the access completes.  All models are *timestamp-based*: ports,
banks and channels are modeled as next-free-cycle counters, which lets a
cycle-level core interact with the hierarchy without event queues.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache


class AccessType(enum.Enum):
    """How an access enters the hierarchy (drives port routing)."""

    SCALAR_LOAD = "scalar_load"
    SCALAR_STORE = "scalar_store"
    VECTOR_LOAD = "vector_load"       # MOM stream element loads
    VECTOR_STORE = "vector_store"
    INST_FETCH = "inst_fetch"


@dataclass
class CacheStats:
    """Hit/miss/latency accounting for one cache."""

    accesses: int = 0
    hits: int = 0
    latency_sum: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.accesses if self.accesses else 0.0


@dataclass
class MemoryStats:
    """Aggregate statistics a memory system reports after a run."""

    icache: CacheStats = field(default_factory=CacheStats)
    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    dram_accesses: int = 0
    bank_conflict_cycles: int = 0
    write_buffer_stalls: int = 0
    coherence_invalidations: int = 0


class MemorySystem:
    """Interface the SMT core programs against."""

    def __init__(self):
        self.stats = MemoryStats()
        #: Optional :class:`repro.verify.sanitizer.RuntimeSanitizer`.
        self.sanitizer = None
        #: Optional :class:`repro.obs.events.PipelineObserver`.
        self.observer = None

    def attach_sanitizer(self, sanitizer) -> None:
        """Hook a runtime sanitizer into this hierarchy's components.

        Walks the conventional attribute names (``l1``, ``l2``,
        ``icache``) and attaches to any MSHR files and write buffers
        found, so every concrete hierarchy gets invariant checking
        without bespoke wiring.  Models without those structures (e.g.
        the perfect memory) simply record the sanitizer.
        """
        self.sanitizer = sanitizer
        for name in ("l1", "l2", "icache"):
            cache = getattr(self, name, None)
            if cache is None:
                continue
            mshr = getattr(cache, "mshr", None)
            if mshr is not None:
                mshr.sanitizer = sanitizer
            buffer = getattr(cache, "write_buffer", None)
            if buffer is not None:
                buffer.sanitizer = sanitizer

    def attach_observer(self, observer) -> None:
        """Hook a pipeline observer into this hierarchy's components.

        Same conventional-attribute walk as :meth:`attach_sanitizer`:
        the hierarchy itself emits the L1/I-cache/stream-bypass events,
        while the shared L2, the MSHR files and the write buffers carry
        their own observer reference (MSHRs additionally learn which
        cache they serve, for the event component name).  Models without
        those structures simply record the observer.
        """
        self.observer = observer
        for name in ("l1", "l2", "icache"):
            cache = getattr(self, name, None)
            if cache is None:
                continue
            if hasattr(cache, "observer"):
                cache.observer = observer
            mshr = getattr(cache, "mshr", None)
            if mshr is not None:
                mshr.observer = observer
                mshr.obs_name = f"{name}.mshr"
            buffer = getattr(cache, "write_buffer", None)
            if buffer is not None:
                buffer.observer = observer

    def access(
        self, thread: int, addr: int, kind: AccessType, now: int
    ) -> int:
        """Perform one data access; returns its completion cycle (> now)."""
        raise NotImplementedError

    def access_stream(
        self,
        thread: int,
        base: int,
        stride: int,
        count: int,
        kind: AccessType,
        now: int,
    ) -> int:
        """Perform a MOM stream access of ``count`` elements.

        Default implementation issues elements back to back through the
        vector path, as many per cycle as the ports allow, and completes
        when the last element returns.
        """
        done = now + 1
        for i in range(count):
            element_done = self.access(thread, base + i * stride, kind, now)
            if element_done > done:
                done = element_done
        return done

    def fetch(self, thread: int, pc: int, now: int) -> int:
        """Instruction-cache access for a fetch group; completion cycle."""
        raise NotImplementedError

    # ----- warming-only path (sampled simulation fast-forward) -------------

    def warm(self, thread: int, addr: int, kind: AccessType) -> None:
        """Warming-only data access: update tags/replacement, no timing.

        The sampled-simulation fast-forward drives cache state through
        this path so the detailed measurement windows start with a warm
        hierarchy.  Implementations update exactly the state the
        detailed path would (tag residency, LRU order, the decoupled
        exclusive-bit rule) while skipping ports, banks, MSHR timing and
        all statistics counters.  The stateless default (perfect memory)
        is a no-op.
        """

    def warm_stream(
        self, thread: int, base: int, stride: int, count: int, kind: AccessType
    ) -> None:
        """Warming-only MOM stream access (see :meth:`warm`)."""

    def warm_fetch(self, thread: int, pc: int) -> None:
        """Warming-only instruction fetch (see :meth:`warm`)."""

    def reset_stats(self) -> None:
        """Zero all counters (warmup boundary); tag state is preserved."""
        self.stats = MemoryStats()

    def reset(self) -> None:
        """Restore pristine post-construction state (counters *and* tag
        state), preserving attached sanitizer/observer hooks.

        Window-chunked sampled runs (:mod:`repro.core.smt`) call this
        between chunks so a reused in-process hierarchy behaves exactly
        like a freshly built one in a pool worker.  The base
        implementation suffices for stateless models (perfect memory);
        hierarchies override it to rebuild their tag/MSHR/DRAM state.
        """
        self.stats = MemoryStats()


#: Per-thread physical page colouring: a multiplicative hash of the
#: virtual page number and thread id models the OS page mapper, so that
#: identical virtual layouts of different contexts collide realistically
#: (not pathologically) in physically-indexed caches.
PAGE_BITS = 12
_PFN_SPACE_BITS = 22          # 16 GB of physical address space (keeps the
                              # hash collision rate between pages negligible)


@lru_cache(maxsize=1 << 18)
def physical_address(thread: int, addr: int) -> int:
    """Translate a (thread, virtual address) pair to a physical address.

    A plain multiplicative hash preserves the trailing zeros of
    power-of-two region bases and maps every region onto the same page
    colour; the splitmix64 finalizer below avalanches fully instead.
    The function is pure, and working sets repeat addresses heavily, so
    the translation is memoized.
    """
    offset = addr & ((1 << PAGE_BITS) - 1)
    vpn = addr >> PAGE_BITS
    mask64 = (1 << 64) - 1
    # splitmix64 finalizer: full avalanche, so low pfn bits (the cache
    # page colour) are well mixed even for tiny or power-of-two vpns.
    z = (vpn * 0x9E3779B97F4A7C15 + thread * 0x2545F4914F6CDD1D) & mask64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask64
    z ^= z >> 31
    pfn = z & ((1 << _PFN_SPACE_BITS) - 1)
    return (pfn << PAGE_BITS) | offset
