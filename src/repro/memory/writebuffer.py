"""Coalescing write buffer with selective flush (paper section 3).

The write-through L1 sends every store through an 8-deep coalescing write
buffer.  Stores to a line already buffered coalesce for free; otherwise a
slot is taken and the entry drains to L2 at the drain port's rate.  A
load that misses L1 but hits a buffered line triggers a *selective flush*:
only that entry must drain before the load's fill proceeds.
"""

from __future__ import annotations


class WriteBuffer:
    """Timestamp-based coalescing write buffer."""

    __slots__ = (
        "depth",
        "drain_interval",
        "_entries",
        "_last_drain",
        "coalesced",
        "full_stalls",
        "sanitizer",
        "observer",
    )

    def __init__(self, depth: int = 8, drain_interval: int = 4):
        if depth < 1:
            raise ValueError("write buffer needs at least one entry")
        self.depth = depth
        self.drain_interval = drain_interval
        #: line_addr -> cycle the entry finishes draining to L2.
        self._entries: dict[int, int] = {}
        self._last_drain = 0
        self.coalesced = 0
        self.full_stalls = 0
        #: Optional :class:`repro.verify.sanitizer.RuntimeSanitizer`.
        self.sanitizer = None
        #: Optional :class:`repro.obs.events.PipelineObserver`.
        self.observer = None

    def _reap(self, now: int) -> None:
        if len(self._entries) >= self.depth:
            drained = [a for a, t in self._entries.items() if t <= now]
            for addr in drained:
                del self._entries[addr]

    def push(self, line_addr: int, now: int) -> int:
        """Buffer a store; returns the cycle the store is accepted.

        Acceptance is immediate unless the buffer is full, in which case
        the store waits for the earliest entry to drain.
        """
        if line_addr in self._entries and self._entries[line_addr] > now:
            self.coalesced += 1
            if self.observer is not None:
                self.observer.mem_note("writebuffer", "coalesce", -1, now)
            return now
        self._reap(now)
        accept = now
        if len(self._entries) >= self.depth:
            accept = min(self._entries.values())
            self.full_stalls += 1
            if self.observer is not None:
                self.observer.mem_note("writebuffer", "full_stall", -1, now)
            self._entries = {
                a: t for a, t in self._entries.items() if t > accept
            }
        drain = max(accept, self._last_drain + self.drain_interval)
        self._last_drain = drain
        self._entries[line_addr] = drain
        if self.sanitizer is not None:
            self.sanitizer.check_writebuffer(self, accept)
        return accept

    def flush_line(self, line_addr: int, now: int) -> int:
        """Selective flush: cycle by which a buffered line has drained.

        Returns ``now`` when the line is not buffered.
        """
        drain = self._entries.get(line_addr)
        if drain is None or drain <= now:
            return now
        return drain

    def occupancy(self, now: int) -> int:
        return sum(1 for t in self._entries.values() if t > now)
