"""The conventional memory organization (paper figure 7a).

Four general-purpose memory ports feed the banked L1; scalar loads and
stores, MMX packed loads/stores and MOM stream elements all travel the
same path.  Stream accesses still benefit from the vector memory unit's
line buffering: consecutive unit-stride elements that fall in the same
L1 line are coalesced into one cache transaction.
"""

from __future__ import annotations

from repro.memory.cache import (
    CacheConfig,
    InstructionCache,
    L1DataCache,
    L1_DATA,
    L2Cache,
)
from repro.memory.dram import RambusChannel
from repro.memory.interface import (
    AccessType,
    MemorySystem,
    physical_address,
)


class ConventionalHierarchy(MemorySystem):
    """L1 <- L2 <- DRDRAM with 4 shared memory ports."""

    def __init__(
        self,
        n_ports: int = 4,
        l1_config: CacheConfig = L1_DATA,
        write_buffer_depth: int = 8,
        dram: RambusChannel | None = None,
        l2: L2Cache | None = None,
    ):
        super().__init__()
        self.dram = dram or (l2.dram if l2 is not None else RambusChannel())
        self.l2 = l2 or L2Cache(self.dram)
        self.l1 = L1DataCache(
            self.l2, config=l1_config, write_buffer_depth=write_buffer_depth
        )
        self.icache = InstructionCache(self.l2)
        self._ports = [0] * n_ports
        # Expose sub-cache statistics through the common container.
        self.stats.l2 = self.l2.stats
        self.stats.icache = self.icache.stats
        self._relink_stats()

    def _relink_stats(self) -> None:
        """Refresh the hot-path references into the stats container.

        ``stats`` is replaced wholesale at the warmup boundary
        (:meth:`reset_stats`), so the per-access code paths read these
        cached references instead of chasing two attributes per counter.
        """
        self._l1_stats = self.stats.l1
        self._icache_stats = self.stats.icache

    # ----- ports -----------------------------------------------------------

    def _acquire_port(self, now: int) -> int:
        best = 0
        for i in range(1, len(self._ports)):
            if self._ports[i] < self._ports[best]:
                best = i
        start = max(now, self._ports[best])
        self._ports[best] = start + 1
        return start

    # ----- data path ----------------------------------------------------------

    def access(self, thread: int, addr: int, kind: AccessType, now: int) -> int:
        """One L1 transaction; updates L1 stats for a single reference."""
        phys = physical_address(thread, addr)
        # Port acquisition, inlined (``_acquire_port`` kept for reference):
        # first free port, first-minimum tie break.
        ports = self._ports
        free = min(ports)
        port = ports.index(free)
        start = now if now > free else free
        ports[port] = start + 1
        if kind is AccessType.SCALAR_STORE or kind is AccessType.VECTOR_STORE:
            done, hit, bank_wait = self.l1.store_line(phys, start)
            if self.observer is not None:
                self.observer.mem_access(
                    "l1", thread, "store", hit, now, done - now
                )
        else:
            done, hit, bank_wait = self.l1.load_line(phys, start)
            # Hit-rate statistics cover loads only: the write-through,
            # no-allocate L1 never "hits" streaming stores by design.
            l1_stats = self._l1_stats
            l1_stats.accesses += 1
            if hit:
                l1_stats.hits += 1
            l1_stats.latency_sum += done - now
            if self.observer is not None:
                self.observer.mem_access(
                    "l1", thread, "load", hit, now, done - now
                )
        self.stats.bank_conflict_cycles += bank_wait
        return done

    def access_stream(
        self,
        thread: int,
        base: int,
        stride: int,
        count: int,
        kind: AccessType,
        now: int,
    ) -> int:
        """Stream elements coalesce per L1 line (vector line buffering).

        Each distinct line is one port/cache transaction; every element
        mapping to that line completes (and is counted) with it.
        """
        is_store = kind == AccessType.VECTOR_STORE
        line_shift = self.l1._line_shift
        l1_stats = self._l1_stats
        ports = self._ports
        observer = self.observer
        done = now + 1
        index = 0
        while index < count:
            addr = base + index * stride
            line = addr >> line_shift
            group = 1
            while (
                index + group < count
                and (base + (index + group) * stride) >> line_shift == line
            ):
                group += 1
            phys = physical_address(thread, addr)
            free = min(ports)
            port = ports.index(free)
            start = now if now > free else free
            ports[port] = start + 1
            if is_store:
                line_done, hit, bank_wait = self.l1.store_line(phys, start)
            else:
                line_done, hit, bank_wait = self.l1.load_line(phys, start)
                l1_stats.accesses += group
                # Only the leading element of a coalesced group can miss;
                # the rest are line-buffer hits (an MMX loop spreading the
                # same references over time records 1 miss + 3 hits, too).
                l1_stats.hits += group if hit else group - 1
                # Latency is measured from port acquisition: the group's
                # lines are presented to the ports together, so measuring
                # from `now` would count issue queuing as cache latency.
                l1_stats.latency_sum += (line_done - start) * group
            if observer is not None:
                observer.mem_access(
                    "l1", thread,
                    "stream_store" if is_store else "stream_load",
                    hit, start, line_done - start, group,
                )
            self.stats.bank_conflict_cycles += bank_wait
            if line_done > done:
                done = line_done
            index += group
        return done

    # ----- warming-only path (sampled simulation fast-forward) -------------

    def _warm_l2(self, phys: int, dirty: bool = False) -> None:
        """Touch (or fill) the L2 line holding ``phys``; timing-free."""
        self.l2.tags.fill(phys >> self.l2._line_shift, dirty=dirty)

    def warm(self, thread: int, addr: int, kind: AccessType) -> None:
        """Tag/replacement update matching :meth:`access`, no timing.

        Loads allocate in L1 (filling from — and therefore also warming —
        L2); stores follow the write-through no-allocate policy: they
        touch an existing L1 line's LRU position and otherwise leave the
        tags alone (the detailed store path never reads L2 either — the
        write buffer drain is timing-only).
        """
        phys = physical_address(thread, addr)
        line = phys >> self.l1._line_shift
        tags = self.l1.tags
        if kind is AccessType.SCALAR_STORE or kind is AccessType.VECTOR_STORE:
            tags.lookup(line)
            return
        if not tags.lookup(line):
            tags.fill(line)
            self._warm_l2(phys)

    def warm_stream(
        self, thread: int, base: int, stride: int, count: int, kind: AccessType
    ) -> None:
        """Per-L1-line coalesced warming, mirroring :meth:`access_stream`."""
        is_store = kind is AccessType.VECTOR_STORE
        line_shift = self.l1._line_shift
        tags = self.l1.tags
        index = 0
        while index < count:
            addr = base + index * stride
            line = addr >> line_shift
            group = 1
            while (
                index + group < count
                and (base + (index + group) * stride) >> line_shift == line
            ):
                group += 1
            phys = physical_address(thread, addr)
            phys_line = phys >> line_shift
            if is_store:
                tags.lookup(phys_line)
            elif not tags.lookup(phys_line):
                tags.fill(phys_line)
                self._warm_l2(phys)
            index += group

    def warm_fetch(self, thread: int, pc: int) -> None:
        """I-cache tag warming matching :meth:`fetch` (fills from L2)."""
        phys = physical_address(thread, pc)
        tags = self.icache.tags
        line = phys >> self.icache._line_shift
        if not tags.lookup(line):
            tags.fill(line)
            self._warm_l2(phys)

    def reset_stats(self) -> None:
        from repro.memory.interface import CacheStats, MemoryStats

        self.stats = MemoryStats()
        self.l2.stats = CacheStats()
        self.stats.l2 = self.l2.stats
        self._relink_stats()
        self.write_buffer_reset()

    def write_buffer_reset(self) -> None:
        self.l1.write_buffer.coalesced = 0
        self.l1.write_buffer.full_stalls = 0

    def reset(self) -> None:
        """Rebuild as freshly constructed, keeping geometry and hooks.

        Tag arrays, MSHRs, bank/port timestamps and the DRAM channel all
        carry absolute-time residue, so the only faithful reset is a
        re-run of ``__init__`` with the same geometry; the attached
        sanitizer/observer survive the rebuild.
        """
        sanitizer = self.sanitizer
        observer = self.observer
        dram = RambusChannel(
            latency=self.dram.latency,
            bytes_per_cycle=self.dram.bytes_per_cycle,
        )
        self.__init__(
            n_ports=len(self._ports),
            l1_config=self.l1.config,
            write_buffer_depth=self.l1.write_buffer.depth,
            dram=dram,
            l2=L2Cache(dram, config=self.l2.config),
        )
        if sanitizer is not None:
            self.attach_sanitizer(sanitizer)
        if observer is not None:
            self.attach_observer(observer)

    # ----- instruction path -------------------------------------------------------

    def fetch(self, thread: int, pc: int, now: int) -> int:
        # The I-cache hit path, inlined from InstructionCache.fetch_line
        # (one call per fetch group makes this the hottest memory entry
        # point); the rare miss path stays delegated to the cache model.
        icache = self.icache
        stats = self._icache_stats
        stats.accesses += 1
        addr = physical_address(thread, pc)
        line = addr >> icache._line_shift
        bank = line & icache._bank_mask
        bank_free = icache._bank_free
        latency = icache._latency
        if bank_free[bank] > now:
            # Busy bank: the probe retries without consuming the bank.
            done = bank_free[bank] + latency
            stats.hits += 1
            stats.latency_sum += done - now
            if self.observer is not None:
                self.observer.mem_access(
                    "icache", thread, "fetch", True, now, done - now
                )
            return done
        bank_free[bank] = now + 1
        tags = icache.tags
        entries = tags._sets[line & tags._set_mask]
        last = len(entries) - 1
        for i in range(last + 1):
            if entries[i][0] == line:
                if i != last:
                    entries.append(entries.pop(i))
                done = now + latency
                fill = icache.mshr._pending.get(line)
                if fill is not None and fill > now and fill + latency > done:
                    done = fill + latency
                stats.hits += 1
                stats.latency_sum += done - now
                if self.observer is not None:
                    self.observer.mem_access(
                        "icache", thread, "fetch", True, now, done - now
                    )
                return done
        # Miss: merge with or allocate an outstanding fill.
        mshr = icache.mshr
        fill = mshr._pending.get(line)
        if fill is not None and fill > now:
            done = fill if fill > now + latency else now + latency
        else:
            start = max(now, mshr.earliest_free(now))
            fill = icache.l2.access(addr, start + latency)
            mshr.allocate(line, fill, start)
            tags.fill(line)
            done = fill + latency
        stats.latency_sum += done - now
        if self.observer is not None:
            self.observer.mem_access(
                "icache", thread, "fetch", False, now, done - now
            )
        return done
