"""Hardware stream prefetcher — an extension knob on the L1 data cache.

The paper notes that vendors pair µ-SIMD extensions with "stream
prefetching instructions in an attempt to alleviate the memory latency
difficulties exposed by low-data-locality, streaming kernels".  This
module provides the *hardware* flavour of the same idea: a per-thread
stride-detecting prefetcher in front of L1, so the ablation bench can ask
how much of MOM's latency tolerance an MMX machine can buy back with
prefetching alone.

Detection is classic reference-prediction-table: for each thread, track
the last miss address and stride; two consecutive misses with the same
stride arm the entry, and further matching misses launch ``depth``
prefetches ahead of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import L1DataCache
from repro.memory.hierarchy import ConventionalHierarchy
from repro.memory.interface import AccessType


@dataclass
class _StreamEntry:
    last_addr: int = -1
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Reference-prediction-table prefetcher feeding an L1 data cache."""

    def __init__(self, l1: L1DataCache, depth: int = 2,
                 min_confidence: int = 2):
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.l1 = l1
        self.depth = depth
        self.min_confidence = min_confidence
        self._table: dict[int, _StreamEntry] = {}
        self.issued = 0
        self.useful_window: set[int] = set()

    def observe_miss(self, thread: int, phys: int, now: int) -> None:
        """Train on an L1 load miss; launch prefetches when confident."""
        entry = self._table.setdefault(thread, _StreamEntry())
        if entry.last_addr >= 0:
            stride = phys - entry.last_addr
            if stride != 0 and stride == entry.stride:
                entry.confidence = min(entry.confidence + 1, 4)
            else:
                entry.stride = stride
                entry.confidence = 0
        entry.last_addr = phys
        if entry.confidence >= self.min_confidence and entry.stride:
            step = entry.stride
            for ahead in range(1, self.depth + 1):
                target = phys + step * ahead
                line = target >> self.l1.config.line_shift
                if self.l1.tags.lookup(line, update_lru=False):
                    continue
                if self.l1.mshr.pending_fill(line, now) is not None:
                    continue
                if self.l1.mshr.earliest_free(now) > now:
                    break                      # no MSHR to spare
                # Launch the fill through the regular miss path; the
                # prefetch is timed like a demand miss but nobody waits.
                self.l1.load_line(target, now)
                self.issued += 1


class PrefetchingHierarchy(ConventionalHierarchy):
    """Conventional hierarchy with a stride prefetcher on L1 load misses."""

    def __init__(self, depth: int = 2, **kwargs):
        super().__init__(**kwargs)
        self.prefetcher = StridePrefetcher(self.l1, depth=depth)

    def access(self, thread: int, addr: int, kind: AccessType, now: int) -> int:
        hits_before = self.stats.l1.hits
        accesses_before = self.stats.l1.accesses
        done = super().access(thread, addr, kind, now)
        was_load = self.stats.l1.accesses > accesses_before
        missed = was_load and self.stats.l1.hits == hits_before
        if missed:
            from repro.memory.interface import physical_address

            self.prefetcher.observe_miss(
                thread, physical_address(thread, addr), now
            )
        return done
