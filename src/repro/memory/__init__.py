"""Memory-hierarchy substrate (paper section 3 and 5.4).

Timing-level models of the paper's on-chip cache hierarchy and Direct
Rambus main memory:

* L1 data cache: 32 KB, direct-mapped, write-through, 32-byte lines,
  8 banks, 8 MSHRs, 8-deep coalescing write buffer with selective flush;
* instruction cache: 64 KB, 2-way, 32-byte lines, 4 banks;
* L2: 1 MB, 2-way, write-back, 128-byte lines, 12-cycle latency;
* DRDRAM: 3.2 GB/s channel (4 bytes per 800 MHz CPU cycle);
* two organizations: the conventional 4-port L1 hierarchy and the
  *decoupled* hierarchy where stream (vector) memory ports bypass L1 and
  talk straight to the banked L2 (exclusive-bit coherence).

Threads share all levels; per-thread physical page colouring models the
OS page mapper so different contexts collide realistically in the caches.
"""

from repro.memory.interface import AccessType, MemoryStats, MemorySystem
from repro.memory.perfect import PerfectMemory
from repro.memory.hierarchy import ConventionalHierarchy
from repro.memory.decoupled import DecoupledHierarchy
from repro.memory.cache import CacheConfig, L1_DATA, L1_INST, L2_UNIFIED

__all__ = [
    "AccessType",
    "MemoryStats",
    "MemorySystem",
    "PerfectMemory",
    "ConventionalHierarchy",
    "DecoupledHierarchy",
    "CacheConfig",
    "L1_DATA",
    "L1_INST",
    "L2_UNIFIED",
]
