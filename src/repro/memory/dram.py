"""Direct Rambus main-memory channel model.

The paper models a 128 MB DRDRAM system: a controller driving 8 Rambus
devices over a 128-bit, bi-directional 200 MHz bus — 3.2 GB/s, which at
the 800 MHz CPU clock is 4 bytes per cycle.  We model the channel as a
latency + occupancy pipe: each line fill pays the device access latency
and holds the channel for ``line_bytes / 4`` cycles, so concurrent misses
queue on bandwidth exactly as the real part would.
"""

from __future__ import annotations

#: Device access latency in CPU cycles (row activate + CAS at 800 MHz).
DEFAULT_LATENCY = 60

#: Channel throughput: bytes per CPU cycle (3.2 GB/s at 800 MHz).
BYTES_PER_CYCLE = 4


class RambusChannel:
    """A single DRDRAM channel with latency and bandwidth occupancy."""

    def __init__(self, latency: int = DEFAULT_LATENCY,
                 bytes_per_cycle: int = BYTES_PER_CYCLE):
        if latency < 1 or bytes_per_cycle < 1:
            raise ValueError("latency and bandwidth must be positive")
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self._channel_free = 0
        self.accesses = 0
        self.busy_cycles = 0

    def access(self, now: int, n_bytes: int) -> int:
        """Transfer ``n_bytes``; returns the completion cycle."""
        start = max(now, self._channel_free)
        transfer = max(1, n_bytes // self.bytes_per_cycle)
        self._channel_free = start + transfer
        self.accesses += 1
        self.busy_cycles += transfer
        return start + self.latency + transfer

    def utilization(self, elapsed: int) -> float:
        """Fraction of cycles the channel was transferring data."""
        return self.busy_cycles / elapsed if elapsed else 0.0
