"""Idealistic memory: every access hits in one cycle (paper section 5.2).

Used for the "perfect cache" experiments (figure 4) — neither cache
misses nor bank conflicts.
"""

from __future__ import annotations

from repro.memory.interface import AccessType, MemorySystem


class PerfectMemory(MemorySystem):
    """All accesses complete in a single cycle; stats report 100 % hits."""

    def access(self, thread: int, addr: int, kind: AccessType, now: int) -> int:
        self.stats.l1.accesses += 1
        self.stats.l1.hits += 1
        self.stats.l1.latency_sum += 1
        return now + 1

    #: Memory ports (element throughput per cycle for stream transfers).
    PORTS = 4

    def access_stream(
        self,
        thread: int,
        base: int,
        stride: int,
        count: int,
        kind: AccessType,
        now: int,
    ) -> int:
        self.stats.l1.accesses += count
        self.stats.l1.hits += count
        self.stats.l1.latency_sum += count
        # No misses or bank conflicts, but a 16-element stream still moves
        # through the memory ports at port rate.
        return now + max(1, -(-count // self.PORTS))

    def fetch(self, thread: int, pc: int, now: int) -> int:
        self.stats.icache.accesses += 1
        self.stats.icache.hits += 1
        return now + 1
