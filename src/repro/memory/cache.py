"""Timing cache models: L1 data, instruction cache, unified L2.

Timestamp-based models: every structural resource (bank, MSHR entry,
write-buffer slot, DRAM channel) is a next-free-cycle counter, so an
access computes its completion cycle in one call.  Tag state is updated
eagerly at miss time (the timing effect of the fill in flight is carried
by the MSHR), which is the standard approximation in trace-driven cache
simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.dram import RambusChannel
from repro.memory.interface import CacheStats
from repro.memory.mshr import MshrFile
from repro.memory.sram import TagArray
from repro.memory.writebuffer import WriteBuffer


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size: int
    assoc: int
    line: int
    banks: int
    latency: int
    mshrs: int = 8

    @property
    def n_sets(self) -> int:
        return self.size // (self.line * self.assoc)

    @property
    def line_shift(self) -> int:
        return self.line.bit_length() - 1

    def __post_init__(self):
        if self.size % (self.line * self.assoc):
            raise ValueError(f"{self.name}: size not divisible into sets")
        if self.line & (self.line - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.banks & (self.banks - 1):
            raise ValueError(f"{self.name}: bank count must be a power of two")


#: Paper section 3 cache parameters.
L1_DATA = CacheConfig("L1D", size=32 << 10, assoc=1, line=32, banks=8, latency=1)
L1_INST = CacheConfig("I1", size=64 << 10, assoc=2, line=32, banks=4, latency=1)
L2_UNIFIED = CacheConfig(
    "L2", size=1 << 20, assoc=2, line=128, banks=2, latency=12
)


class L2Cache:
    """Unified on-chip L2: write-back, banked, backed by the DRDRAM channel."""

    #: Cycles a bank is held per access (128-byte line movement).
    BANK_OCCUPANCY = 4

    def __init__(self, dram: RambusChannel, config: CacheConfig = L2_UNIFIED):
        self.config = config
        self.dram = dram
        self.tags = TagArray(config.n_sets, config.assoc)
        self.stats = CacheStats()
        self._bank_free = [0] * config.banks
        self.mshr = MshrFile(config.mshrs)
        #: Optional :class:`repro.obs.events.PipelineObserver` — set by
        #: :meth:`repro.memory.interface.MemorySystem.attach_observer`.
        #: L2 transactions carry no requester context (thread ``-1``).
        self.observer = None
        # Hot-path constants (config is frozen; line_shift is a property).
        self._line_shift = config.line_shift
        self._latency = config.latency
        self._bank_mask = config.banks - 1
        self._line_bytes = config.line

    def _bank_of(self, line_addr: int) -> int:
        return line_addr & (self.config.banks - 1)

    def _acquire_bank(self, line_addr: int, now: int) -> int:
        bank = self._bank_of(line_addr)
        start = max(now, self._bank_free[bank])
        self._bank_free[bank] = start + self.BANK_OCCUPANCY
        return start

    def access(self, addr: int, now: int, is_store: bool = False) -> int:
        """Read or write one line; returns data-available cycle."""
        line = addr >> self._line_shift
        # Bank acquisition, inlined (one call per simulated L2 reference).
        bank = line & self._bank_mask
        bank_free = self._bank_free
        start = now if now > bank_free[bank] else bank_free[bank]
        bank_free[bank] = start + self.BANK_OCCUPANCY
        stats = self.stats
        tags = self.tags
        mshr = self.mshr
        latency = self._latency
        stats.accesses += 1
        if tags.lookup(line):
            if is_store:
                tags.mark_dirty(line)
            stats.hits += 1
            done = start + latency
            # Tags are updated eagerly at miss time; data of a line whose
            # fill is still in flight is not available before the fill.
            pending = mshr.pending_fill(line, start)
            if pending is not None and pending > done:
                done = pending
            stats.latency_sum += done - now
            if self.observer is not None:
                self.observer.mem_access(
                    "l2", -1, "store" if is_store else "load",
                    True, now, done - now,
                )
            return done
        # Miss: merge with an in-flight fill when possible.
        pending = mshr.pending_fill(line, start)
        if pending is not None:
            done = max(pending, start + latency)
            stats.latency_sum += done - now
            if is_store:
                tags.mark_dirty(line)
            if self.observer is not None:
                self.observer.mem_access(
                    "l2", -1, "store" if is_store else "load",
                    False, now, done - now,
                )
            return done
        start = max(start, mshr.earliest_free(start))
        fill = self.dram.access(start + latency, self._line_bytes)
        mshr.allocate(line, fill, start)
        victim = tags.fill(line, dirty=is_store)
        if victim is not None and victim[1]:
            # Dirty write-back consumes channel bandwidth.
            self.dram.access(fill, self._line_bytes)
        stats.latency_sum += fill - now
        if self.observer is not None:
            self.observer.mem_access(
                "l2", -1, "store" if is_store else "load",
                False, now, fill - now,
            )
        return fill

    def invalidate(self, addr: int) -> bool:
        return self.tags.invalidate(addr >> self.config.line_shift)


class L1DataCache:
    """32 KB direct-mapped write-through L1 with MSHRs and write buffer."""

    def __init__(self, l2: L2Cache, config: CacheConfig = L1_DATA,
                 write_buffer_depth: int = 8):
        self.config = config
        self.l2 = l2
        self.tags = TagArray(config.n_sets, config.assoc)
        self.stats = CacheStats()
        self.mshr = MshrFile(config.mshrs)
        self.write_buffer = WriteBuffer(depth=write_buffer_depth)
        self._bank_free = [0] * config.banks
        self._line_shift = config.line_shift
        self._latency = config.latency
        self._bank_mask = config.banks - 1

    def _line_of(self, addr: int) -> int:
        return addr >> self.config.line_shift

    def _acquire_bank(self, line_addr: int, now: int) -> tuple[int, int]:
        bank = line_addr & (self.config.banks - 1)
        start = max(now, self._bank_free[bank])
        self._bank_free[bank] = start + 1
        return start, start - now

    def load_line(self, addr: int, now: int) -> tuple[int, bool, int]:
        """Read the line containing ``addr``.

        Returns ``(data_ready_cycle, hit, bank_wait_cycles)``.
        """
        line = addr >> self._line_shift
        # Bank acquisition, tag lookup and MSHR probe inlined (hot path);
        # the logic mirrors TagArray.lookup / MshrFile.pending_fill.
        bank = line & self._bank_mask
        bank_free = self._bank_free
        start = now if now > bank_free[bank] else bank_free[bank]
        bank_free[bank] = start + 1
        bank_wait = start - now
        latency = self._latency
        mshr = self.mshr
        tags = self.tags
        entries = tags._sets[line & tags._set_mask]
        hit = False
        last = len(entries) - 1
        for i in range(last + 1):
            if entries[i][0] == line:
                if i != last:
                    entries.append(entries.pop(i))
                hit = True
                break
        if hit:
            done = start + latency
            fill = mshr._pending.get(line)
            if fill is not None and fill > start:
                # The line was allocated eagerly by an earlier miss; its
                # data arrives with the in-flight fill.
                if fill + latency > done:
                    done = fill + latency
            return done, True, bank_wait
        # Selective flush: a buffered store to this line must drain first.
        start = self.write_buffer.flush_line(line, start)
        pending = mshr.pending_fill(line, start)
        if pending is not None:
            return max(pending, start + latency), False, bank_wait
        start = max(start, mshr.earliest_free(start))
        fill = self.l2.access(addr, start + latency)
        mshr.allocate(line, fill, start)
        self.tags.fill(line)
        return fill + latency, False, bank_wait

    def store_line(self, addr: int, now: int) -> tuple[int, bool, int]:
        """Write through ``addr``; returns ``(done, hit, bank_wait)``.

        Write-through, no-allocate: a store hit updates the line, a miss
        does not allocate; either way the store enters the coalescing
        write buffer, which is where a full buffer back-pressures.
        """
        line = addr >> self._line_shift
        bank = line & self._bank_mask
        bank_free = self._bank_free
        start = now if now > bank_free[bank] else bank_free[bank]
        bank_free[bank] = start + 1
        bank_wait = start - now
        tags = self.tags
        entries = tags._sets[line & tags._set_mask]
        hit = False
        last = len(entries) - 1
        for i in range(last + 1):
            if entries[i][0] == line:
                if i != last:
                    entries.append(entries.pop(i))
                hit = True
                break
        accept = self.write_buffer.push(line, start)
        return max(start, accept) + self._latency, hit, bank_wait

    def invalidate(self, addr: int) -> bool:
        return self.tags.invalidate(self._line_of(addr))

    def contains(self, addr: int) -> bool:
        return self.tags.lookup(self._line_of(addr), update_lru=False)


class InstructionCache:
    """64 KB two-way I-cache; misses fill from L2."""

    def __init__(self, l2: L2Cache, config: CacheConfig = L1_INST):
        self.config = config
        self.l2 = l2
        self.tags = TagArray(config.n_sets, config.assoc)
        self.stats = CacheStats()
        self.mshr = MshrFile(4)
        self._bank_free = [0] * config.banks
        self._line_shift = config.line_shift
        self._latency = config.latency
        self._bank_mask = config.banks - 1

    def fetch_line(self, addr: int, now: int) -> tuple[int, bool]:
        """Fetch the line holding ``addr``; returns ``(ready, hit)``.

        A probe that finds its bank busy returns the retry cycle *without*
        consuming the bank — otherwise several threads camped on one bank
        would book it against each other's retries and livelock the fetch
        engine.
        """
        line = addr >> self._line_shift
        bank = line & self._bank_mask
        bank_free = self._bank_free
        latency = self._latency
        if bank_free[bank] > now:
            return bank_free[bank] + latency, True
        bank_free[bank] = now + 1
        mshr = self.mshr
        # Tag lookup and MSHR probe inlined (hot path); mirrors
        # TagArray.lookup / MshrFile.pending_fill.
        tags = self.tags
        entries = tags._sets[line & tags._set_mask]
        hit = False
        last = len(entries) - 1
        for i in range(last + 1):
            if entries[i][0] == line:
                if i != last:
                    entries.append(entries.pop(i))
                hit = True
                break
        if hit:
            done = now + latency
            fill = mshr._pending.get(line)
            if fill is not None and fill > now and fill + latency > done:
                done = fill + latency
            return done, True
        pending = mshr.pending_fill(line, now)
        if pending is not None:
            return max(pending, now + latency), False
        start = max(now, mshr.earliest_free(now))
        fill = self.l2.access(addr, start + latency)
        mshr.allocate(line, fill, start)
        self.tags.fill(line)
        return fill + latency, False
