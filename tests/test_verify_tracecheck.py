"""Trace validation: generated traces are clean; corrupted ones are caught.

Defects are injected by mutating already-built traces: the generator and
the ``Instruction``/``ProgramMix`` constructors validate their inputs, so
the only way a malformed trace reaches the simulator is through drift or
a buggy loader — which is exactly what mutation models.
"""

import copy

import pytest

from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import build_program_trace
from repro.verify.tracecheck import check_instructions, check_mix, check_trace

SCALE = 2e-5


def codes(findings):
    return {d.code for d in findings}


@pytest.fixture()
def mom_trace():
    return build_program_trace("jpegenc", "mom", scale=SCALE)


# ----- generated traces are clean -------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOAD_MIXES))
@pytest.mark.parametrize("isa", ["mmx", "mom"])
def test_generated_traces_validate_clean(name, isa):
    trace = build_program_trace(name, isa, scale=SCALE)
    findings = check_trace(trace)
    assert findings == [], [str(d) for d in findings]


# ----- injected defects ------------------------------------------------------


def test_unknown_isa_tag(mom_trace):
    mom_trace.isa = "vliw"
    assert "TRACE-ISA" in codes(check_instructions(mom_trace))


def test_simd_class_in_scalar_only_trace(mom_trace):
    # A scalar-only configuration must not see MOM (or MMX) classes.
    mom_trace.isa = "scalar"
    assert "TRACE-CLASS-FORBIDDEN" in codes(check_instructions(mom_trace))


def test_mom_class_forbidden_in_mmx_trace(mom_trace):
    mom_trace.isa = "mmx"
    assert "TRACE-CLASS-FORBIDDEN" in codes(check_instructions(mom_trace))


def test_dst_register_out_of_range(mom_trace):
    inst = next(i for i in mom_trace.instructions if i.dst >= 0)
    inst.dst = 0xFF00                     # unknown register class byte
    assert "TRACE-DST-RANGE" in codes(check_instructions(mom_trace))


def test_src_register_index_out_of_range(mom_trace):
    inst = next(i for i in mom_trace.instructions if i.srcs)
    rclass = inst.srcs[0] & ~0xFF
    inst.srcs = (rclass | 0xFF,) + inst.srcs[1:]   # index 255 of its class
    assert "TRACE-SRC-RANGE" in codes(check_instructions(mom_trace))


def test_stream_length_out_of_range(mom_trace):
    inst = next(i for i in mom_trace.instructions if i.is_stream)
    inst.stream_length = 99
    assert "TRACE-STREAM-LENGTH" in codes(check_instructions(mom_trace))


def test_stream_length_on_scalar_opcode(mom_trace):
    inst = next(i for i in mom_trace.instructions if not i.is_stream)
    inst.stream_length = 4
    assert "TRACE-STREAM-SCALAR" in codes(check_instructions(mom_trace))


def test_non_positive_mem_size(mom_trace):
    inst = next(i for i in mom_trace.instructions if i.is_mem)
    inst.mem_size = 0
    assert "TRACE-MEM-SIZE" in codes(check_instructions(mom_trace))


def test_zero_stride_stream_is_warning(mom_trace):
    inst = next(
        i
        for i in mom_trace.instructions
        if i.is_mem and i.stream_length > 1
    )
    inst.stride = 0
    assert "TRACE-ZERO-STRIDE" in codes(check_instructions(mom_trace))


def test_mix_fractions_must_sum_to_one(mom_trace):
    # ProgramMix is frozen and self-validating; traces share the registry
    # instance, so corrupt a private copy.
    broken = copy.copy(mom_trace.mix)
    object.__setattr__(broken, "frac_int", broken.frac_int + 0.5)
    mom_trace.mix = broken
    assert "TRACE-MIX-SUM" in codes(check_mix(mom_trace))


def test_non_positive_mmx_equivalent(mom_trace):
    mom_trace.mmx_equivalent = 0
    assert "TRACE-MMX-EQUIV" in codes(check_mix(mom_trace))
