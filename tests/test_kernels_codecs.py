"""End-to-end tests for the JPEG and GSM codec pipelines."""

import numpy as np
import pytest

from repro.kernels.gsm import FRAME_SIZE, preprocess
from repro.kernels.gsm_codec import (
    GsmDecoder,
    GsmEncoder,
    _analysis_filter,
    _direct_form_coefficients,
    _synthesis_filter,
    segmental_snr,
    synthetic_speech,
)
from repro.kernels.jpeg_codec import (
    JpegCodec,
    image_psnr,
    synthetic_image,
)


class TestJpegCodec:
    @pytest.fixture(scope="class")
    def grey(self):
        return synthetic_image(48, 56)

    def test_grey_roundtrip_quality(self, grey):
        codec = JpegCodec(quality=80)
        decoded = codec.decode(codec.encode(grey))
        assert decoded.shape == grey.shape
        assert image_psnr(grey, decoded) > 28.0

    def test_compression_actually_compresses(self, grey):
        encoded = JpegCodec(quality=60).encode(grey)
        assert encoded.compression_ratio() > 2.0

    def test_quality_tradeoff(self, grey):
        low = JpegCodec(quality=20)
        high = JpegCodec(quality=90)
        enc_low, enc_high = low.encode(grey), high.encode(grey)
        assert enc_low.total_bits < enc_high.total_bits
        psnr_low = image_psnr(grey, low.decode(enc_low))
        psnr_high = image_psnr(grey, high.decode(enc_high))
        assert psnr_high > psnr_low

    def test_color_roundtrip(self):
        rgb = synthetic_image(40, 44, color=True)
        codec = JpegCodec(quality=85)
        decoded = codec.decode(codec.encode(rgb))
        assert decoded.shape == rgb.shape
        assert image_psnr(rgb, decoded) > 24.0

    def test_non_multiple_of_8_dimensions(self):
        image = synthetic_image(43, 51)
        codec = JpegCodec(quality=75)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == (43, 51)

    def test_flat_image_codes_tiny(self):
        flat = np.full((32, 32), 128, dtype=np.uint8)
        encoded = JpegCodec(quality=75).encode(flat)
        assert encoded.compression_ratio() > 20.0
        decoded = JpegCodec(quality=75).decode(encoded)
        assert np.abs(decoded.astype(int) - 128).max() <= 2

    def test_missing_codec_rejected(self):
        encoded = JpegCodec().encode(synthetic_image(16, 16))
        encoded.codec = None
        with pytest.raises(ValueError):
            JpegCodec().decode(encoded)


class TestLpcFilters:
    def test_step_up_known_values(self):
        # Single reflection coefficient: A(z) = 1 + k z^-1.
        a = _direct_form_coefficients(np.array([0.5]))
        assert a == pytest.approx([0.5])

    def test_analysis_synthesis_inverse(self):
        rng = np.random.default_rng(2)
        refl = np.array([0.4, -0.3, 0.2, -0.1])
        signal = rng.normal(0, 100, 300)
        back = _synthesis_filter(_analysis_filter(signal, refl), refl)
        assert np.abs(back - signal).max() < 1e-8

    def test_levinson_recovers_ar2(self):
        from repro.kernels.gsm import autocorrelation, reflection_coefficients

        rng = np.random.default_rng(0)
        n = 4000
        signal = np.zeros(n)
        for i in range(2, n):
            signal[i] = 0.9 * signal[i - 1] - 0.5 * signal[i - 2] + rng.normal()
        quantized = np.round(signal * 100).astype(np.int64)
        refl = reflection_coefficients(autocorrelation(quantized, 4), 4)
        a = _direct_form_coefficients(refl)
        assert a[0] == pytest.approx(-0.9, abs=0.05)
        assert a[1] == pytest.approx(0.5, abs=0.05)
        assert abs(a[2]) < 0.05 and abs(a[3]) < 0.05

    def test_whitening_reduces_prediction_error(self):
        from repro.kernels.gsm import autocorrelation, reflection_coefficients

        rng = np.random.default_rng(1)
        n = 1000
        signal = np.zeros(n)
        for i in range(1, n):
            signal[i] = 0.85 * signal[i - 1] + rng.normal(0, 50)
        quantized = np.round(signal).astype(np.int64)
        refl = reflection_coefficients(autocorrelation(quantized))
        residual = _analysis_filter(quantized.astype(float), refl)
        assert np.dot(residual, residual) < 0.5 * np.dot(quantized, quantized)


class TestGsmCodec:
    @pytest.fixture(scope="class")
    def coded(self):
        speech = synthetic_speech(6)
        encoder, decoder = GsmEncoder(), GsmDecoder()
        frames, recon = [], []
        for i in range(6):
            frame = encoder.encode_frame(
                speech[i * FRAME_SIZE : (i + 1) * FRAME_SIZE]
            )
            frames.append(frame)
            recon.append(decoder.decode_frame(frame))
        return speech, frames, np.concatenate(recon)

    def test_reconstruction_quality(self, coded):
        speech, __, recon = coded
        # Skip the first frame: filters and LTP history are still filling.
        assert segmental_snr(speech[FRAME_SIZE:], recon[FRAME_SIZE:]) > 6.0

    def test_output_is_16_bit(self, coded):
        __, __, recon = coded
        assert recon.max() <= 32767 and recon.min() >= -32768

    def test_lags_in_legal_range(self, coded):
        __, frames, __ = coded
        for frame in frames:
            for sub in frame.subframes:
                assert 40 <= sub.lag <= 120

    def test_reflection_coefficients_stable(self, coded):
        __, frames, __ = coded
        for frame in frames:
            assert np.all(np.abs(frame.reflection) < 1.0)

    def test_frame_length_validated(self):
        with pytest.raises(ValueError):
            GsmEncoder().encode_frame(np.zeros(100))

    def test_decoder_rejects_corrupt_lag(self, coded):
        __, frames, __ = coded
        bad = frames[0]
        bad.subframes[0].lag = 999
        with pytest.raises(ValueError):
            GsmDecoder().decode_frame(bad)

    def test_voiced_speech_locks_stable_lag(self):
        # On a periodic signal the LTP should lock onto one stable lag
        # once its history fills (the exact value depends on where the
        # unnormalized correlation peaks in the residual domain).
        from collections import Counter

        speech = synthetic_speech(4)
        encoder = GsmEncoder()
        lags = []
        for i in range(4):
            frame = encoder.encode_frame(
                speech[i * FRAME_SIZE : (i + 1) * FRAME_SIZE]
            )
            lags.extend(sub.lag for sub in frame.subframes)
        steady = lags[4:]
        __, count = Counter(steady).most_common(1)[0]
        assert count >= len(steady) // 2
