"""Lease bookkeeping: deterministic TTL tracking for in-flight work."""

import pytest

from repro.service.leases import Lease, LeaseTable


class TestLease:
    def test_expires_after_ttl(self):
        lease = Lease(key="fp", holder="attempt-0", ttl=5.0, acquired_at=100.0)
        assert not lease.expired(104.9)
        assert lease.expired(105.0)

    def test_none_ttl_never_expires(self):
        lease = Lease(key="fp", holder="", ttl=None, acquired_at=0.0)
        assert not lease.expired(1e12)

    def test_renewal_pushes_the_deadline(self):
        lease = Lease(key="fp", holder="", ttl=5.0, acquired_at=100.0)
        lease.renewed_at = 103.0
        assert lease.deadline == 108.0
        assert not lease.expired(107.0)

    def test_non_positive_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl"):
            Lease(key="fp", holder="", ttl=0.0, acquired_at=0.0)
        with pytest.raises(ValueError, match="ttl"):
            Lease(key="fp", holder="", ttl=-1.0, acquired_at=0.0)


class TestLeaseTable:
    def test_acquire_release_lifecycle(self):
        table = LeaseTable()
        lease = table.acquire("fp", ttl=5.0, now=0.0, holder="attempt-0")
        assert len(table) == 1
        assert "fp" in table
        assert table.get("fp") is lease
        released = table.release("fp")
        assert released is lease
        assert len(table) == 0
        assert table.release("fp") is None  # idempotent

    def test_reacquire_replaces(self):
        # A re-grant is deliberate (a retry attempt takes over the key).
        table = LeaseTable()
        table.acquire("fp", ttl=5.0, now=0.0, holder="attempt-0")
        second = table.acquire("fp", ttl=5.0, now=10.0, holder="attempt-1")
        assert len(table) == 1
        assert table.get("fp") is second
        assert not second.expired(14.0)

    def test_renew_heartbeat(self):
        table = LeaseTable()
        table.acquire("fp", ttl=5.0, now=0.0)
        assert table.renew("fp", now=4.0)
        assert not table.get("fp").expired(8.0)
        assert table.get("fp").expired(9.0)
        assert not table.renew("ghost", now=0.0)

    def test_expired_in_deterministic_key_order(self):
        table = LeaseTable()
        table.acquire("zz", ttl=1.0, now=0.0)
        table.acquire("aa", ttl=1.0, now=0.0)
        table.acquire("mm", ttl=50.0, now=0.0)
        expired = table.expired(now=2.0)
        assert [lease.key for lease in expired] == ["aa", "zz"]

    def test_expired_keeps_unexpired_and_infinite(self):
        table = LeaseTable()
        table.acquire("degraded", ttl=None, now=0.0)
        table.acquire("live", ttl=100.0, now=0.0)
        assert table.expired(now=50.0) == []
        assert len(table) == 2
