"""Unit and property tests for packed sub-word data types."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.datatypes import (
    ElementType,
    lanewise,
    pack_lanes,
    saturate,
    to_signed,
    to_unsigned,
    unpack_lanes,
    wrap,
)

ALL_TYPES = list(ElementType)


def lane_values(etype):
    return st.lists(
        st.integers(etype.min_value, etype.max_value),
        min_size=etype.lanes,
        max_size=etype.lanes,
    )


class TestElementType:
    def test_lane_counts(self):
        assert ElementType.INT8.lanes == 8
        assert ElementType.INT16.lanes == 4
        assert ElementType.INT32.lanes == 2
        assert ElementType.UINT8.lanes == 8

    def test_signed_ranges(self):
        assert ElementType.INT8.min_value == -128
        assert ElementType.INT8.max_value == 127
        assert ElementType.INT16.max_value == 32767
        assert ElementType.UINT16.min_value == 0
        assert ElementType.UINT16.max_value == 65535

    def test_unsigned_ranges(self):
        assert ElementType.UINT32.max_value == (1 << 32) - 1


class TestReinterpretation:
    def test_to_signed_wraps_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128
        assert to_signed(0x7F, 8) == 127

    def test_to_unsigned_masks(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-128, 8) == 0x80

    @given(st.integers(-(1 << 15), (1 << 15) - 1))
    def test_roundtrip_16(self, value):
        assert to_signed(to_unsigned(value, 16), 16) == value


class TestSaturation:
    def test_saturate_clamps_high(self):
        assert saturate(300, ElementType.INT8) == 127
        assert saturate(70000, ElementType.UINT16) == 65535

    def test_saturate_clamps_low(self):
        assert saturate(-300, ElementType.INT8) == -128
        assert saturate(-5, ElementType.UINT8) == 0

    def test_saturate_identity_in_range(self):
        assert saturate(100, ElementType.INT16) == 100

    @given(st.integers(-(1 << 40), 1 << 40))
    def test_saturate_always_in_range(self, value):
        for etype in ALL_TYPES:
            result = saturate(value, etype)
            assert etype.min_value <= result <= etype.max_value

    def test_wrap_modular(self):
        assert wrap(128, ElementType.INT8) == -128
        assert wrap(256, ElementType.UINT8) == 0
        assert wrap(-1, ElementType.UINT8) == 255


class TestPackUnpack:
    @pytest.mark.parametrize("etype", ALL_TYPES)
    def test_roundtrip_zero(self, etype):
        lanes = [0] * etype.lanes
        assert unpack_lanes(pack_lanes(lanes, etype), etype) == lanes

    @given(st.data())
    def test_roundtrip_property(self, data):
        etype = data.draw(st.sampled_from(ALL_TYPES))
        lanes = data.draw(lane_values(etype))
        assert unpack_lanes(pack_lanes(lanes, etype), etype) == lanes

    def test_little_endian_layout(self):
        word = pack_lanes([1, 2, 3, 4], ElementType.INT16)
        assert word & 0xFFFF == 1
        assert (word >> 48) & 0xFFFF == 4

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes([1, 2, 3], ElementType.INT16)

    def test_out_of_range_lane_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes([300] + [0] * 7, ElementType.INT8)

    def test_unpack_rejects_non_u64(self):
        with pytest.raises(ValueError):
            unpack_lanes(1 << 64, ElementType.INT8)
        with pytest.raises(ValueError):
            unpack_lanes(-1, ElementType.INT8)


class TestLanewise:
    @given(st.data())
    def test_saturating_add_in_range(self, data):
        etype = data.draw(st.sampled_from(ALL_TYPES))
        a = pack_lanes(data.draw(lane_values(etype)), etype)
        b = pack_lanes(data.draw(lane_values(etype)), etype)
        out = unpack_lanes(
            lanewise(lambda x, y: x + y, a, b, etype, saturating=True), etype
        )
        for lane in out:
            assert etype.min_value <= lane <= etype.max_value

    @given(st.data())
    def test_wrapping_add_matches_modular_arithmetic(self, data):
        etype = data.draw(st.sampled_from([ElementType.INT8, ElementType.INT16]))
        xs = data.draw(lane_values(etype))
        ys = data.draw(lane_values(etype))
        a, b = pack_lanes(xs, etype), pack_lanes(ys, etype)
        out = unpack_lanes(
            lanewise(lambda x, y: x + y, a, b, etype, saturating=False), etype
        )
        for x, y, o in zip(xs, ys, out):
            assert o == wrap(x + y, etype)
