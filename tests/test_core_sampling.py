"""SMARTS-style statistical sampling: engine, statistics, plumbing.

Covers the three properties the sampled mode guarantees:

* **Convergence** — at scale 1e-4 the full-detail EIPC falls inside the
  sampled run's own 95 % confidence interval (the headline accuracy
  claim of the sampling methodology);
* **Determinism** — sampled results are bit-identical between serial
  and parallel execution and between cold and warm caches, exactly like
  full-detail results;
* **Faithful warming** — the fast-forward path updates cache tag and
  coherence state the detailed path would, and nothing else (no
  statistics, no timing structures).
"""

import json
import math

import pytest

from repro.analysis.runner import (
    RunRequest,
    Runner,
    result_from_dict,
    result_to_dict,
)
from repro.core import SMTConfig, SMTProcessor
from repro.core.stats import mean_ci95, t_critical_95
from repro.memory.decoupled import DecoupledHierarchy
from repro.memory.hierarchy import ConventionalHierarchy
from repro.memory.interface import AccessType
from repro.workloads import build_workload_traces

#: Tiny-scale runs for the fast structural tests.
SCALE = 1.2e-5
#: Sampling parameters sized so several windows fit a tiny-scale run.
TINY_SAMPLING = (2000, 400, 100)
#: The convergence tests run at the fidelity the issue specifies.
CONVERGENCE_SCALE = 1e-4
CONVERGENCE_SAMPLING = (20000, 2000, 500)


def run_processor(
    isa="mmx",
    n_threads=2,
    scale=SCALE,
    sampling=TINY_SAMPLING,
    memory=None,
    sanitize=False,
):
    processor = SMTProcessor(
        SMTConfig(
            isa=isa, n_threads=n_threads, sampling=sampling, sanitize=sanitize
        ),
        memory if memory is not None else ConventionalHierarchy(),
        build_workload_traces(isa, scale=scale),
    )
    return processor.run()


# ------------------------------------------------------------------ statistics


class TestConfidenceMath:
    def test_t_critical_exact_rows(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(5) == pytest.approx(2.571)
        assert t_critical_95(30) == pytest.approx(2.042)

    def test_t_critical_interpolates_conservatively(self):
        # Between tabulated rows the next bound's (larger) value is used.
        assert t_critical_95(35) == t_critical_95(40)
        assert t_critical_95(1000) == pytest.approx(1.960)

    def test_t_critical_rejects_zero_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_mean_ci95_known_values(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, half = mean_ci95(samples)
        assert mean == pytest.approx(3.0)
        # s = sqrt(2.5), CI = t(4) * s / sqrt(5)
        assert half == pytest.approx(2.776 * math.sqrt(2.5 / 5), rel=1e-3)

    def test_mean_ci95_single_sample_is_unbounded(self):
        mean, half = mean_ci95([2.5])
        assert mean == 2.5
        assert math.isinf(half)

    def test_mean_ci95_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci95([])


class TestSamplingConfig:
    def test_lists_normalize_to_int_tuples(self):
        config = SMTConfig(sampling=[1000.0, 100, 50])
        assert config.sampling == (1000, 100, 50)

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            SMTConfig(sampling=(1000, 100))

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            SMTConfig(sampling=(1000, 0, 50))

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            SMTConfig(sampling=(-1, 100, 50))


# ------------------------------------------------------------------ the engine


class TestSampledRun:
    @pytest.fixture(scope="class")
    def sampled(self):
        return run_processor()

    def test_produces_windows(self, sampled):
        assert sampled.sampling == list(TINY_SAMPLING)
        assert len(sampled.samples) >= 2

    def test_headline_is_ratio_of_sums(self, sampled):
        cycles = sum(s[0] for s in sampled.samples)
        committed = sum(s[1] for s in sampled.samples)
        equivalent = sum(s[2] for s in sampled.samples)
        assert sampled.cycles == cycles
        assert sampled.committed_instructions == committed
        assert sampled.committed_equivalent == pytest.approx(equivalent)
        assert sampled.eipc == pytest.approx(equivalent / cycles)

    def test_ci_accessors(self, sampled):
        samples = sampled.eipc_samples
        assert len(samples) == len(sampled.samples)
        mean, half = mean_ci95(samples)
        assert sampled.eipc_mean == pytest.approx(mean)
        assert sampled.eipc_ci95 == pytest.approx(half)

    def test_full_detail_result_has_no_samples(self):
        full = run_processor(sampling=None)
        assert full.sampling is None
        assert full.samples is None
        assert full.eipc_ci95 == 0.0
        assert full.eipc_mean == full.eipc

    def test_workload_runs_to_completion(self, sampled):
        # The fast-forward rotates programs exactly like the commit
        # stage: the multiprogramming methodology is preserved.
        assert sampled.program_completions == 8

    def test_degenerate_ff_still_measures(self):
        # A fast-forward longer than the whole workload is clamped so
        # at least a few periods (hence windows) fit.
        result = run_processor(sampling=(10**9, 400, 100))
        assert len(result.samples) >= 2

    def test_sanitizer_clean_over_sampled_run(self):
        # The runtime sanitizer checks pipeline/memory invariants at the
        # detailed windows' boundaries; a sampled run must not trip it
        # (drain hands over clean state) on either hierarchy.
        result = run_processor(sanitize=True)
        assert result.samples
        decoupled = run_processor(
            isa="mom", memory=DecoupledHierarchy(), sanitize=True
        )
        assert decoupled.samples


class TestConvergence:
    @pytest.mark.parametrize("isa,n_threads", [("mmx", 1), ("mom", 8)])
    def test_sampled_ci_covers_full_detail_eipc(self, isa, n_threads):
        full = run_processor(
            isa=isa, n_threads=n_threads,
            scale=CONVERGENCE_SCALE, sampling=None,
        )
        sampled = run_processor(
            isa=isa, n_threads=n_threads,
            scale=CONVERGENCE_SCALE, sampling=CONVERGENCE_SAMPLING,
        )
        assert len(sampled.samples) >= 4
        assert abs(full.eipc - sampled.eipc_mean) <= sampled.eipc_ci95, (
            f"full-detail EIPC {full.eipc:.4f} outside sampled "
            f"{sampled.eipc_mean:.4f} ± {sampled.eipc_ci95:.4f}"
        )


# ------------------------------------------------------------------ warming


class TestWarmingPath:
    def test_conventional_warm_load_installs_line(self):
        mem = ConventionalHierarchy()
        mem.warm(0, 0x4000, AccessType.SCALAR_LOAD)
        done = mem.access(0, 0x4000, AccessType.SCALAR_LOAD, now=0)
        assert mem.stats.l1.hits == 1
        assert done <= 2

    def test_conventional_warm_store_does_not_allocate(self):
        mem = ConventionalHierarchy()
        mem.warm(0, 0x4000, AccessType.SCALAR_STORE)
        mem.access(0, 0x4000, AccessType.SCALAR_LOAD, now=0)
        assert mem.stats.l1.hits == 0

    def test_warm_touches_no_statistics(self):
        mem = ConventionalHierarchy()
        mem.warm(0, 0x4000, AccessType.SCALAR_LOAD)
        mem.warm_stream(0, 0x8000, 8, 32, AccessType.VECTOR_LOAD)
        mem.warm_fetch(0, 0x100)
        stats = mem.stats
        assert stats.l1.accesses == 0
        assert stats.icache.accesses == 0
        assert stats.l2.accesses == 0
        assert stats.dram_accesses == 0
        assert stats.bank_conflict_cycles == 0

    def test_decoupled_warm_vector_applies_exclusive_bit(self):
        mem = DecoupledHierarchy()
        from repro.memory.interface import physical_address

        phys = physical_address(0, 0x4000)
        mem.access(0, 0x4000, AccessType.SCALAR_LOAD, now=0)
        assert mem.l1.contains(phys)
        mem.warm(0, 0x4000, AccessType.VECTOR_LOAD)
        assert not mem.l1.contains(phys)
        # The warming invalidation is not a counted coherence event.
        assert mem.stats.coherence_invalidations == 0

    def test_decoupled_warm_scalar_load_installs_line(self):
        mem = DecoupledHierarchy()
        mem.warm(0, 0x4000, AccessType.SCALAR_LOAD)
        mem.access(0, 0x4000, AccessType.SCALAR_LOAD, now=0)
        assert mem.stats.l1.hits == 1


# ------------------------------------------------------------------ plumbing


def sampled_request(**overrides) -> RunRequest:
    base = dict(
        isa="mmx", n_threads=2, scale=SCALE, sampling=TINY_SAMPLING
    )
    base.update(overrides)
    return RunRequest(**base)


class TestSampledRunnerPlumbing:
    def test_result_round_trip_preserves_samples(self):
        result = Runner().run(sampled_request())
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert rebuilt == result
        assert rebuilt.samples == result.samples

    def test_list_and_tuple_sampling_are_one_request(self):
        assert sampled_request(
            sampling=list(TINY_SAMPLING)
        ) == sampled_request()

    def test_sampled_and_full_detail_never_share_cache_keys(self):
        assert (
            sampled_request().fingerprint("v")
            != sampled_request(sampling=None).fingerprint("v")
        )
        assert (
            sampled_request().fingerprint("v")
            != sampled_request(sampling=(2000, 400, 200)).fingerprint("v")
        )

    def test_parallel_matches_serial_bit_for_bit(self):
        batch = [
            sampled_request(),
            sampled_request(isa="mom"),
            sampled_request(memory="decoupled"),
            sampled_request(n_threads=4),
        ]
        serial = Runner().run_batch(batch)
        parallel = Runner(jobs=2).run_batch(batch)
        for request in batch:
            assert parallel[request] == serial[request], request
            assert parallel[request].samples, request

    def test_warm_cache_matches_cold_bit_for_bit(self, tmp_path):
        batch = [sampled_request(), sampled_request(isa="mom")]
        cold = Runner(cache_dir=str(tmp_path)).run_batch(batch)
        warm_runner = Runner(cache_dir=str(tmp_path))
        warm = warm_runner.run_batch(batch)
        assert warm_runner.stats.simulated == 0
        assert warm == cold
        for request in batch:
            assert warm[request].samples == cold[request].samples

    def test_throughput_accounting_counts_fast_forwarded_work(
        self, tmp_path
    ):
        # A sampled run's committed_instructions covers only the
        # measurement windows; the runner's throughput provenance must
        # count the whole workload the run advanced (the basis of the
        # sampling speedup), cold and warm alike.
        cold = Runner(cache_dir=str(tmp_path))
        result = cold.run(sampled_request())
        advanced = sum(result.per_program_committed.values())
        assert advanced > result.committed_instructions
        assert cold.stats.sim_instructions == advanced
        warm = Runner(cache_dir=str(tmp_path))
        warm.run(sampled_request())
        assert warm.stats.cached_instructions == advanced

    def test_fig6_sampled_report_states_ci_and_resolution(self):
        from repro.analysis.experiments import run_fig6_fetch

        result = run_fig6_fetch(
            scale=SCALE, threads=(2,), sampling=TINY_SAMPLING
        )
        assert "±" in result.report
        assert "resolve" in result.report
        assert set(result.measured["ranking_resolved"]) == {"mmx", "mom"}
