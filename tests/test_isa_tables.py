"""Tests for the ISA opcode tables, registers and instruction records."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.mmx import EXPECTED_MMX_OPCODE_COUNT, MMX_LOGICAL_REGISTERS, MMX_OPCODES
from repro.isa.mom import (
    EXPECTED_MOM_OPCODE_COUNT,
    MOM_ACCUMULATORS,
    MOM_MAX_STREAM_LENGTH,
    MOM_OPCODES,
    MOM_STREAM_REGISTERS,
)
from repro.isa.opcodes import (
    FP_CLASSES,
    INTEGER_CLASSES,
    MEMORY_CLASSES,
    OPCODE_INFO,
    Opcode,
    SIMD_ARITH_CLASSES,
    latency_of,
    queue_of,
    Queue,
)
from repro.isa.registers import (
    LOGICAL_COUNTS,
    LogicalRegisters,
    RegisterClass,
    make_reg,
    reg_class,
    reg_index,
)
from repro.isa.spec import MnemonicSpec, build_table


class TestPaperCounts:
    def test_mmx_has_67_opcodes(self):
        assert len(MMX_OPCODES) == EXPECTED_MMX_OPCODE_COUNT == 67

    def test_mom_has_121_opcodes(self):
        assert len(MOM_OPCODES) == EXPECTED_MOM_OPCODE_COUNT == 121

    def test_mmx_register_count(self):
        assert MMX_LOGICAL_REGISTERS == 32
        assert LOGICAL_COUNTS[RegisterClass.MMX] == 32

    def test_mom_register_geometry(self):
        assert MOM_STREAM_REGISTERS == 16
        assert MOM_MAX_STREAM_LENGTH == 16
        assert MOM_ACCUMULATORS == 2

    def test_all_mmx_specs_map_to_mmx_sim_classes(self):
        for spec in MMX_OPCODES.values():
            assert spec.sim_class.name.startswith("MMX"), spec.mnemonic

    def test_all_mom_specs_map_to_mom_sim_classes(self):
        for spec in MOM_OPCODES.values():
            assert spec.sim_class.name.startswith("MOM"), spec.mnemonic

    def test_no_mnemonic_collisions_between_isas(self):
        assert not set(MMX_OPCODES) & set(MOM_OPCODES)


class TestOpcodeInfo:
    def test_every_opcode_classified(self):
        for op in Opcode:
            assert op in OPCODE_INFO

    def test_class_partitions_are_disjoint(self):
        groups = [INTEGER_CLASSES, FP_CLASSES, SIMD_ARITH_CLASSES, MEMORY_CLASSES]
        for i, g1 in enumerate(groups):
            for g2 in groups[i + 1 :]:
                assert not g1 & g2

    def test_class_partitions_cover_everything(self):
        covered = INTEGER_CLASSES | FP_CLASSES | SIMD_ARITH_CLASSES | MEMORY_CLASSES
        assert covered == set(Opcode)

    def test_memory_ops_flagged(self):
        for op in MEMORY_CLASSES:
            assert OPCODE_INFO[op].is_mem

    def test_queue_routing(self):
        assert queue_of(Opcode.INT_ALU) is Queue.INT
        assert queue_of(Opcode.LOAD) is Queue.MEM
        assert queue_of(Opcode.MMX_ALU) is Queue.SIMD
        assert queue_of(Opcode.MOM_SETSLR) is Queue.INT  # SLR in int pool

    def test_latencies_positive(self):
        for op in Opcode:
            assert latency_of(op) >= 1

    def test_multiplies_slower_than_alu(self):
        assert latency_of(Opcode.INT_MUL) > latency_of(Opcode.INT_ALU)
        assert latency_of(Opcode.MMX_MUL) > latency_of(Opcode.MMX_ALU)


class TestRegisters:
    def test_encode_decode_roundtrip(self):
        for rclass in RegisterClass:
            for index in (0, LOGICAL_COUNTS[rclass] - 1):
                reg = make_reg(rclass, index)
                assert reg_class(reg) is rclass
                assert reg_index(reg) == index

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_reg(RegisterClass.ACC, 2)
        with pytest.raises(ValueError):
            make_reg(RegisterClass.STREAM, 16)

    def test_distinct_classes_distinct_ids(self):
        assert make_reg(RegisterClass.INT, 5) != make_reg(RegisterClass.FP, 5)

    def test_helper_shortcuts(self):
        regs = LogicalRegisters()
        assert reg_class(regs.r(3)) is RegisterClass.INT
        assert reg_class(regs.f(3)) is RegisterClass.FP
        assert reg_class(regs.m(3)) is RegisterClass.MMX
        assert reg_class(regs.v(3)) is RegisterClass.STREAM
        assert reg_class(regs.acc(1)) is RegisterClass.ACC


class TestInstruction:
    def test_stream_length_on_non_stream_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.INT_ALU, stream_length=4)

    def test_stream_length_zero_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MOM_ALU, stream_length=0)

    def test_count_weight_expands_streams(self):
        inst = Instruction(Opcode.MOM_ALU, stream_length=16)
        assert inst.count_weight == 16
        assert Instruction(Opcode.INT_ALU).count_weight == 1

    def test_stream_addresses(self):
        inst = Instruction(
            Opcode.MOM_LOAD, mem_addr=1000, stream_length=4, stride=16
        )
        assert inst.stream_addresses() == [1000, 1016, 1032, 1048]

    def test_stream_addresses_rejects_non_memory(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MOM_ALU, stream_length=4).stream_addresses()

    def test_flags(self):
        assert Instruction(Opcode.LOAD).is_mem
        assert Instruction(Opcode.STORE).is_store
        assert Instruction(Opcode.BRANCH).is_branch
        assert Instruction(Opcode.MMX_ALU).is_simd
        assert Instruction(Opcode.MOM_ALU).is_stream
        assert not Instruction(Opcode.INT_ALU).is_simd

    def test_repr_mentions_opcode(self):
        assert "MOM_LOAD" in repr(Instruction(Opcode.MOM_LOAD, mem_addr=64))


class TestSpecTable:
    def test_duplicate_mnemonic_rejected(self):
        spec = MnemonicSpec("dup", Opcode.MMX_ALU)
        with pytest.raises(ValueError):
            build_table([spec, spec])

    def test_empty_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            MnemonicSpec("", Opcode.MMX_ALU)

    def test_source_count_bounds(self):
        with pytest.raises(ValueError):
            MnemonicSpec("x", Opcode.MMX_ALU, sources=4)
