"""The assembly linter: clean programs pass, seeded defects are caught."""

import pytest

from repro.isa import codegen
from repro.isa.assembler import assemble
from repro.verify.asmcheck import SIGNATURES, lint_program, lint_source
from repro.verify.diagnostics import Severity


def codes(findings, severity=None):
    return {
        d.code
        for d in findings
        if severity is None or d.severity is severity
    }


# ----- clean inputs ----------------------------------------------------------


def test_example_listings_lint_clean():
    import examples.mom_assembly as mom_assembly

    for name in ("DOT_PRODUCT", "SAD_16x8"):
        findings = lint_source(getattr(mom_assembly, name), name=name)
        assert findings == [], [str(d) for d in findings]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: codegen.mom_dot_product(0x1000, 0x2000, 64),
        lambda: codegen.mom_sad(0x1000, 0x2000, 128),
        lambda: codegen.mom_saturating_add(0x1000, 0x2000, 0x3000, 64),
        lambda: codegen.mmx_dot_product(0x1000, 0x2000, 64),
        lambda: codegen.mmx_saturating_add(0x1000, 0x2000, 0x3000, 64),
    ],
)
def test_kernel_library_lints_clean(factory):
    findings = lint_program(factory(), name="kernel")
    assert findings == [], [str(d) for d in findings]


def test_every_table_mnemonic_has_a_signature():
    from repro.isa.mmx import MMX_OPCODES
    from repro.isa.mom import MOM_OPCODES

    for mnemonic in list(MMX_OPCODES) + list(MOM_OPCODES):
        assert mnemonic in SIGNATURES, mnemonic


def test_self_xor_zeroing_idiom_counts_as_definition():
    findings = lint_source("pxor mm0, mm0, mm0\n", name="zero")
    assert findings == [], [str(d) for d in findings]


# ----- seeded defects (one per rule) ----------------------------------------


def test_def_before_use_is_flagged_with_line():
    findings = lint_source("li r1, 4\nadd r2, r1, r3\n", name="t")
    bad = [d for d in findings if d.code == "ASM-DEF-BEFORE-USE"]
    assert len(bad) == 1
    assert bad[0].line == 2
    assert "r3" in bad[0].message


def test_stream_load_before_slr_set():
    findings = lint_source("li r1, 4096\nvldq v0, r1, 0, 8\n", name="t")
    assert "ASM-SLR-UNSET" in codes(findings)
    # Setting the SLR first silences the rule.
    clean = lint_source(
        "li r1, 4096\nsetslri 8\nvldq v0, r1, 0, 8\n", name="t"
    )
    assert "ASM-SLR-UNSET" not in codes(clean)


def test_slr_immediate_out_of_range():
    findings = lint_source("setslri 17\n", name="t")
    assert "ASM-SLR-RANGE" in codes(findings)


def test_accumulator_read_before_write_is_error():
    findings = lint_source("vrdaccsd mm0, a0\n", name="t")
    assert "ASM-ACC-READ-UNWRITTEN" in codes(findings, Severity.ERROR)


def test_accumulate_without_clear_is_warning():
    source = "setslri 8\nvzero v0\nvaddaw a0, v0\n"
    findings = lint_source(source, name="t")
    assert "ASM-ACC-UNCLEARED" in codes(findings, Severity.WARNING)
    cleared = lint_source(
        "setslri 8\nvzero v0\nvclracc a0\nvaddaw a0, v0\n", name="t"
    )
    assert "ASM-ACC-UNCLEARED" not in codes(cleared)


def test_arity_mismatch():
    findings = lint_source("li r1, 1\nli r2, 2\npaddw mm0, mm1\n", name="t")
    assert "ASM-ARITY" in codes(findings)


def test_operand_class_mismatch():
    findings = lint_source("li r1, 1\npaddw mm0, r1, r1\n", name="t")
    assert "ASM-OPERAND-TYPE" in codes(findings)


def test_register_index_out_of_range():
    findings = lint_source("vzero v99\n", name="t")
    assert "ASM-REG-RANGE" in codes(findings)


def test_unknown_mnemonic():
    findings = lint_source("frobnicate r1, r2\n", name="t")
    assert "ASM-UNKNOWN-MNEMONIC" in codes(findings)


def test_loop_to_missing_label():
    findings = lint_source("li r1, 4\nloop r1, nowhere\n", name="t")
    assert "ASM-UNDEF-LABEL" in codes(findings)


def test_unused_label_is_warning():
    findings = lint_source("top:\nli r1, 4\n", name="t")
    assert "ASM-UNUSED-LABEL" in codes(findings, Severity.WARNING)


def test_duplicate_label():
    findings = lint_source("top:\nli r1, 1\ntop:\n", name="t")
    assert "ASM-DUP-LABEL" in codes(findings)


def test_unparseable_operand():
    findings = lint_source("li r1, banana\n", name="t")
    assert "ASM-BAD-OPERAND" in codes(findings)


# ----- program front end -----------------------------------------------------


def test_lint_program_catches_seeded_defect():
    # Assembles fine (the assembler does no def-use analysis), but reads
    # mm2 before anything writes it.
    program = assemble("paddw mm0, mm1, mm2\n")
    findings = lint_program(program, name="bad")
    assert "ASM-DEF-BEFORE-USE" in codes(findings)


def test_lint_program_reports_instruction_index():
    program = assemble("li r1, 4096\nvldq v0, r1, 0, 8\n")
    findings = lint_program(program, name="bad")
    slr = [d for d in findings if d.code == "ASM-SLR-UNSET"]
    assert len(slr) == 1 and slr[0].line == 2
