"""Tests for the MPEG-2 mini-codec and the Mesa-like 3D pipeline."""

import numpy as np
import pytest

from repro.kernels.mesa3d import (
    Vertex,
    look_at,
    perspective,
    perspective_divide,
    rasterize_triangle,
    render_mesh,
    transform_vertices,
)
from repro.kernels.mpeg2 import (
    Mpeg2Decoder,
    Mpeg2Encoder,
    psnr,
    synthetic_video,
)


class TestMpeg2Codec:
    @pytest.fixture(scope="class")
    def roundtrip(self):
        frames = synthetic_video(6, 32, 32)
        encoder = Mpeg2Encoder(quality=75, gop=3, search_range=3)
        decoder = Mpeg2Decoder(quality=75)
        encoded, decoded = [], []
        for frame in frames:
            e = encoder.encode_frame(frame)
            encoded.append(e)
            decoded.append(decoder.decode_frame(e))
        return frames, encoded, decoded

    def test_gop_pattern(self, roundtrip):
        __, encoded, __ = roundtrip
        assert [e.frame_type for e in encoded] == ["I", "P", "P", "I", "P", "P"]

    def test_reconstruction_quality(self, roundtrip):
        frames, __, decoded = roundtrip
        for original, recon in zip(frames, decoded):
            assert psnr(original, recon) > 24.0

    def test_p_frames_have_motion_vectors(self, roundtrip):
        __, encoded, __ = roundtrip
        p_frames = [e for e in encoded if e.frame_type == "P"]
        assert all(e.motion_vectors for e in p_frames)
        i_frames = [e for e in encoded if e.frame_type == "I"]
        assert all(not e.motion_vectors for e in i_frames)

    def test_decoder_requires_i_frame_first(self, roundtrip):
        __, encoded, __ = roundtrip
        fresh = Mpeg2Decoder(quality=75)
        p_frame = next(e for e in encoded if e.frame_type == "P")
        with pytest.raises(ValueError):
            fresh.decode_frame(p_frame)

    def test_residual_coding_smaller_than_intra(self, roundtrip):
        __, encoded, __ = roundtrip
        def coded_symbols(e):
            return sum(len(block) for block in e.blocks)
        intra = coded_symbols(encoded[0])
        inter = coded_symbols(encoded[1])
        assert inter < intra          # P residuals are cheaper than I blocks

    def test_frame_dims_validated(self):
        encoder = Mpeg2Encoder()
        with pytest.raises(ValueError):
            encoder.encode_frame(np.zeros((30, 32)))

    def test_psnr_perfect_is_infinite(self):
        frame = np.full((8, 8), 42, dtype=np.uint8)
        assert psnr(frame, frame) == float("inf")

    def test_synthetic_video_deterministic(self):
        a = synthetic_video(3, 16, 16, seed=5)
        b = synthetic_video(3, 16, 16, seed=5)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestMesa3d:
    def test_lookat_maps_center_to_negative_z(self):
        view = look_at([0, 0, 5], [0, 0, 0], [0, 1, 0])
        center = view @ np.array([0.0, 0.0, 0.0, 1.0])
        assert center[2] == pytest.approx(-5.0)

    def test_perspective_validates_planes(self):
        with pytest.raises(ValueError):
            perspective(60, 1.0, 2.0, 1.0)

    def test_transform_identity(self):
        vertices = [Vertex((1.0, 2.0, 3.0, 1.0))]
        out = transform_vertices(vertices, np.eye(4))
        assert out[0].position == (1.0, 2.0, 3.0, 1.0)

    def test_perspective_divide_drops_behind_eye(self):
        vertices = [
            Vertex((0.0, 0.0, 0.0, 1.0)),
            Vertex((0.0, 0.0, 0.0, -1.0)),   # behind the eye
        ]
        screen = perspective_divide(vertices, 64, 64)
        assert len(screen) == 1

    def test_perspective_divide_centers_origin(self):
        screen = perspective_divide([Vertex((0.0, 0.0, 0.0, 1.0))], 65, 65)
        x, y, __, __ = screen[0]
        assert (x, y) == (32.0, 32.0)

    def test_rasterize_covers_half_square(self):
        fb = np.zeros((16, 16, 3), dtype=np.uint8)
        zb = np.full((16, 16), np.inf)
        written = rasterize_triangle(
            fb, zb,
            (0.0, 0.0, 0.5, (1, 0, 0)),
            (15.0, 0.0, 0.5, (1, 0, 0)),
            (0.0, 15.0, 0.5, (1, 0, 0)),
        )
        assert 90 <= written <= 140       # ~half of 256 pixels

    def test_zbuffer_keeps_nearer_triangle(self):
        fb = np.zeros((8, 8, 3), dtype=np.uint8)
        zb = np.full((8, 8), np.inf)
        tri = [(0.0, 0.0), (7.0, 0.0), (0.0, 7.0)]
        rasterize_triangle(
            fb, zb, *[(x, y, 0.9, (1, 0, 0)) for x, y in tri]
        )
        rasterize_triangle(
            fb, zb, *[(x, y, 0.1, (0, 1, 0)) for x, y in tri]
        )
        assert fb[1, 1, 1] > 0            # green (nearer) wins
        assert fb[1, 1, 0] == 0

    def test_degenerate_triangle_writes_nothing(self):
        fb = np.zeros((8, 8, 3), dtype=np.uint8)
        zb = np.full((8, 8), np.inf)
        p = (2.0, 2.0, 0.5, (1, 1, 1))
        assert rasterize_triangle(fb, zb, p, p, p) == 0

    def test_render_mesh_end_to_end(self):
        view = look_at([0, 0, 3], [0, 0, 0], [0, 1, 0])
        proj = perspective(60, 1.0, 0.1, 10.0)
        vertices = [
            Vertex((-0.5, -0.5, 0.0, 1.0), (1, 0, 0)),
            Vertex((0.5, -0.5, 0.0, 1.0), (0, 1, 0)),
            Vertex((0.0, 0.5, 0.0, 1.0), (0, 0, 1)),
        ]
        fb, written = render_mesh(vertices, [(0, 1, 2)], proj @ view, 32, 32)
        assert written > 20
        assert fb.any()
