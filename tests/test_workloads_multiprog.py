"""Tests for the multiprogramming scheduler and workload registry."""

import pytest

from repro.tracegen import build_program_trace
from repro.workloads import (
    MEDIABENCH_PROGRAMS,
    MultiprogramScheduler,
    WORKLOAD_ORDER,
    build_workload_traces,
)
from repro.workloads.mediabench import workload_total_minsts

SCALE = 1.2e-5


@pytest.fixture(scope="module")
def traces():
    return build_workload_traces("mmx", scale=SCALE)


class TestRegistry:
    def test_seven_programs(self):
        assert len(MEDIABENCH_PROGRAMS) == 7

    def test_instances_sum_to_eight(self):
        assert sum(p.instances for p in MEDIABENCH_PROGRAMS.values()) == 8

    def test_profiles_cover_mpeg4(self):
        profiles = {p.profile for p in MEDIABENCH_PROGRAMS.values()}
        assert any("video" in p for p in profiles)
        assert any("audio" in p for p in profiles)
        assert any("still image" in p for p in profiles)

    def test_workload_totals_match_table3(self):
        assert workload_total_minsts("mmx") == pytest.approx(1429, abs=10)
        assert workload_total_minsts("mom") == pytest.approx(1087, abs=10)

    def test_build_workload_returns_eight_traces(self, traces):
        assert len(traces) == 8
        assert [t.name for t in traces] == list(WORKLOAD_ORDER)

    def test_duplicate_mpeg2dec_instances_differ(self, traces):
        decs = [t for t in traces if t.name == "mpeg2dec"]
        assert len(decs) == 2
        addr_a = [i.mem_addr for i in decs[0].instructions if i.is_mem][:50]
        addr_b = [i.mem_addr for i in decs[1].instructions if i.is_mem][:50]
        assert addr_a != addr_b

    def test_bad_isa_rejected(self):
        with pytest.raises(ValueError):
            build_workload_traces("sse2")


class TestScheduler:
    def test_initial_assignments_follow_order(self, traces):
        sched = MultiprogramScheduler(traces, n_threads=3)
        slots = sched.initial_assignments()
        assert [s.trace.name for s in slots] == list(WORKLOAD_ORDER[:3])

    def test_rotation_wraps_list(self, traces):
        sched = MultiprogramScheduler(traces, n_threads=8, completions_target=10)
        sched.initial_assignments()
        first_refill = sched.on_completion()
        assert first_refill.trace.name == WORKLOAD_ORDER[0]

    def test_completion_target_ends_run(self, traces):
        sched = MultiprogramScheduler(traces, n_threads=1, completions_target=2)
        sched.initial_assignments()
        assert sched.on_completion() is not None
        assert sched.on_completion() is None
        assert sched.done
        assert sched.completions == 2

    def test_single_thread_runs_programs_sequentially(self, traces):
        sched = MultiprogramScheduler(traces, n_threads=1, completions_target=8)
        slots = sched.initial_assignments()
        names = [slots[0].trace.name]
        for __ in range(7):
            replacement = sched.on_completion()
            names.append(replacement.trace.name)
        assert names == list(WORKLOAD_ORDER)

    def test_validation(self, traces):
        with pytest.raises(ValueError):
            MultiprogramScheduler(traces, n_threads=0)
        with pytest.raises(ValueError):
            MultiprogramScheduler([], n_threads=1)
