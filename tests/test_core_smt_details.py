"""Targeted tests of SMT pipeline corner behaviours."""

import pytest

from repro.core import FetchPolicy, SMTConfig, SMTProcessor
from repro.core.params import Resources, scaled_resources
from repro.isa.registers import RegisterClass
from repro.memory import PerfectMemory
from repro.tracegen.builder import TraceBuilder
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import Trace


def make_trace(emit, isa="mmx", name="tiny"):
    builder = TraceBuilder(isa, seed=7)
    emit(builder)
    return Trace(
        name=name,
        isa=isa,
        instructions=builder.instructions,
        mmx_equivalent=sum(i.stream_length for i in builder.instructions),
        mix=WORKLOAD_MIXES["gsmdec"],
    )


def run(trace, config=None, **kw):
    processor = SMTProcessor(
        config or SMTConfig(isa=trace.isa),
        PerfectMemory(),
        [trace],
        completions_target=1,
        warmup_fraction=0.0,
        **kw,
    )
    result = processor.run()
    return processor, result


class TestDependencyTiming:
    def test_independent_ops_reach_issue_width(self):
        # 400 integer ops with no sources: IPC should approach 4.
        def emit(builder):
            base = builder.alloc_code(1)
            for __ in range(400):
                inst = builder.int_op(pc=base)
                inst.srcs = ()
        trace = make_trace(emit)
        __, result = run(trace)
        assert result.ipc > 3.0

    def test_serial_chain_limited_to_one_per_cycle(self):
        def emit(builder):
            base = builder.alloc_code(1)
            prev = builder.int_op(pc=base)
            for __ in range(300):
                inst = builder.int_op(pc=base)
                inst.srcs = (prev.dst,)
                prev = inst
        trace = make_trace(emit)
        __, result = run(trace)
        assert result.ipc < 1.4          # true dependence chain

    def test_long_latency_op_blocks_dependent(self):
        def emit(builder):
            base = builder.alloc_code(2)
            mul = builder.int_op(mul=True, pc=base)       # 8-cycle latency
            dep = builder.int_op(pc=base + 4)
            dep.srcs = (mul.dst,)
        trace = make_trace(emit)
        __, result = run(trace)
        assert result.cycles >= 9


class TestResourceStalls:
    def test_tiny_window_throttles_ilp(self):
        def emit(builder):
            base = builder.alloc_code(1)
            for __ in range(400):
                inst = builder.int_op(pc=base)
                inst.srcs = ()
        trace = make_trace(emit)
        big = scaled_resources(1)
        tiny = Resources(
            rename_regs=dict(big.rename_regs),
            queue_sizes=dict(big.queue_sizes),
            graduation_window=4,
        )
        __, result_tiny = run(
            trace, config=SMTConfig(isa="mmx", resources=tiny)
        )
        __, result_big = run(trace)
        assert result_tiny.ipc < result_big.ipc

    def test_rename_pool_exhaustion_throttles(self):
        def emit(builder):
            base = builder.alloc_code(1)
            for __ in range(400):
                inst = builder.int_op(pc=base)
                inst.srcs = ()
        trace = make_trace(emit)
        big = scaled_resources(1)
        regs = dict(big.rename_regs)
        regs[RegisterClass.INT] = 3
        starved = Resources(
            rename_regs=regs,
            queue_sizes=dict(big.queue_sizes),
            graduation_window=big.graduation_window,
        )
        __, result = run(trace, config=SMTConfig(isa="mmx", resources=starved))
        # Three rename registers sustain ~1.5 IPC (alloc/free round trip).
        assert result.ipc < 2.0


class TestWarmupBoundary:
    def test_warmup_shrinks_measured_window(self):
        def emit(builder):
            base = builder.alloc_code(1)
            for __ in range(500):
                builder.int_op(pc=base)
        trace = make_trace(emit)
        processor = SMTProcessor(
            SMTConfig(isa="mmx"),
            PerfectMemory(),
            [trace],
            completions_target=1,
            warmup_fraction=0.5,
        )
        result = processor.run()
        # Roughly half the instructions fall inside the measured window.
        assert 150 < result.committed_instructions < 350

    def test_zero_warmup_measures_everything(self):
        def emit(builder):
            base = builder.alloc_code(1)
            for __ in range(100):
                builder.int_op(pc=base)
        trace = make_trace(emit)
        __, result = run(trace)
        assert result.committed_instructions == 100


class TestFetchPolicySelection:
    def test_policy_recorded_in_result(self):
        def emit(builder):
            base = builder.alloc_code(1)
            for __ in range(50):
                builder.int_op(pc=base)
        trace = make_trace(emit)
        processor = SMTProcessor(
            SMTConfig(isa="mmx"),
            PerfectMemory(),
            [trace],
            fetch_policy=FetchPolicy.BALANCE,
            completions_target=1,
            warmup_fraction=0.0,
        )
        assert processor.run().fetch_policy == "balance"
