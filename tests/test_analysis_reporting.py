"""Tests for the analysis/reporting layer and the experiment drivers."""

import pytest

from repro.analysis import (
    format_table,
    run_breakdown_table3,
    simulate,
)
from repro.analysis.paper import (
    FIG4_IDEAL,
    SUMMARY_SPEEDUP,
    TABLE3_TOTALS,
    TABLE4,
)
from repro.analysis.reporting import paper_vs_measured
from repro.core.fetch import FetchPolicy

FAST_SCALE = 1.2e-5


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["a", "long-header"], [[1, 2.5], [33, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "long-header" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23" not in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_paper_vs_measured_shows_error(self):
        line = paper_vs_measured("metric", 2.0, 2.2)
        assert "+10.0%" in line

    def test_paper_vs_measured_zero_paper(self):
        line = paper_vs_measured("metric", 0.0, 1.0)
        assert "%" not in line


class TestPaperConstants:
    def test_fig4_monotone_in_threads(self):
        for isa in ("mmx", "mom"):
            series = FIG4_IDEAL[isa]
            values = [series[n] for n in sorted(series)]
            assert values == sorted(values)

    def test_mom_dominates_mmx_in_paper(self):
        for n in FIG4_IDEAL["mmx"]:
            assert FIG4_IDEAL["mom"][n] > FIG4_IDEAL["mmx"][n]
        assert SUMMARY_SPEEDUP["mom"] > SUMMARY_SPEEDUP["mmx"]

    def test_table4_mom_more_robust_at_8_threads(self):
        assert TABLE4["l1_hit"]["mom"][8] > TABLE4["l1_hit"]["mmx"][8]
        assert TABLE4["l1_latency"]["mom"][8] < TABLE4["l1_latency"]["mmx"][8]

    def test_table3_totals(self):
        assert TABLE3_TOTALS == {"mmx": 1429.0, "mom": 1087.0}


class TestDrivers:
    def test_simulate_smoke(self):
        result = simulate("mmx", 2, memory="perfect", scale=FAST_SCALE)
        assert result.program_completions == 8
        assert result.eipc > 1.0

    def test_simulate_rejects_unknown_memory(self):
        with pytest.raises(ValueError):
            simulate("mmx", 1, memory="magic", scale=FAST_SCALE)

    def test_simulate_respects_policy(self):
        result = simulate(
            "mom", 2, memory="perfect",
            fetch_policy=FetchPolicy.OCOUNT, scale=FAST_SCALE,
        )
        assert result.fetch_policy == "ocount"

    def test_table3_driver_report(self):
        result = run_breakdown_table3(scale=FAST_SCALE)
        assert "mpeg2enc" in result.report
        assert "paper" in result.report
        assert set(result.measured) == {
            "mpeg2enc", "mpeg2dec", "jpegenc", "jpegdec",
            "gsmenc", "gsmdec", "mesa",
        }
        for per_isa in result.measured.values():
            for isa in ("mmx", "mom"):
                fractions = per_isa[isa]
                total = (
                    fractions["int"] + fractions["fp"]
                    + fractions["simd"] + fractions["mem"]
                )
                assert total == pytest.approx(1.0, abs=0.01)
