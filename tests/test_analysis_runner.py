"""The experiment run engine: fingerprints, caching, dedup, parallelism."""

import dataclasses
import json
import os

import pytest

from repro.analysis.runner import (
    RunRequest,
    Runner,
    code_version,
    execute_request,
    memory_factory,
    result_from_dict,
    result_to_dict,
)
from repro.core.fetch import FetchPolicy
from repro.memory.hierarchy import ConventionalHierarchy
from repro.memory.perfect import PerfectMemory

#: Small enough for sub-second runs, large enough that every program
#: contributes instructions.
SCALE = 1.2e-5


def tiny(**overrides) -> RunRequest:
    base = dict(isa="mmx", n_threads=2, scale=SCALE)
    base.update(overrides)
    return RunRequest(**base)


class TestRunRequest:
    def test_fingerprint_stable(self):
        assert tiny().fingerprint("v") == tiny().fingerprint("v")

    @pytest.mark.parametrize(
        "change",
        [
            {"isa": "mom"},
            {"n_threads": 4},
            {"memory": "perfect"},
            {"fetch_policy": "icount"},
            {"scale": 1.3e-5},
            {"seed": 1},
            {"completions_target": 16},
            {"sampling": (5000, 500, 100)},
        ],
    )
    def test_fingerprint_covers_every_field(self, change):
        assert tiny(**change).fingerprint("v") != tiny().fingerprint("v")

    def test_fingerprint_covers_code_version(self):
        assert tiny().fingerprint("v1") != tiny().fingerprint("v2")

    def test_enum_policy_normalized(self):
        assert tiny(fetch_policy=FetchPolicy.ICOUNT) == tiny(
            fetch_policy="icount"
        )

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)

    def test_memory_factory(self):
        assert memory_factory("perfect") is PerfectMemory
        assert memory_factory("conventional") is ConventionalHierarchy
        with pytest.raises(ValueError):
            memory_factory("imaginary")


class TestWindowJobsExemption:
    """window_jobs is audited out of the fingerprint, not forgotten.

    The sampled schedule chunks identically for every window_jobs value
    (sampled_chunk_count is a pure function of config and workload) and
    merges in fixed chunk order, so serial and sharded execution are
    bit-identical — fingerprinting the knob would fork the result cache
    on a pure execution strategy.  These tests pin that choice: the
    exemption table stays honest, and equality/hash/fingerprint all
    agree that two requests differing only in window_jobs are the same
    simulation point.
    """

    def test_exempt_table_lists_real_request_fields(self):
        from repro.analysis.runner import FINGERPRINT_EXEMPT_REQUEST_FIELDS

        names = {field.name for field in dataclasses.fields(RunRequest)}
        for name, rationale in FINGERPRINT_EXEMPT_REQUEST_FIELDS.items():
            assert name in names, f"stale exemption entry {name!r}"
            assert rationale and isinstance(rationale, str)
        assert "window_jobs" in FINGERPRINT_EXEMPT_REQUEST_FIELDS

    def test_window_jobs_not_in_fingerprint(self):
        assert (
            tiny(window_jobs=4).fingerprint("v") == tiny().fingerprint("v")
        )

    def test_window_jobs_not_in_equality_or_hash(self):
        assert tiny(window_jobs=4) == tiny()
        assert hash(tiny(window_jobs=4)) == hash(tiny())

    def test_window_jobs_normalized(self):
        assert tiny(window_jobs=0).window_jobs == 1
        assert tiny(window_jobs="3").window_jobs == 3

    def test_replace_preserves_identity(self):
        request = tiny(sampling=(1000, 200, 50))
        rewritten = dataclasses.replace(request, window_jobs=8)
        assert rewritten == request
        assert rewritten.window_jobs == 8
        assert rewritten.fingerprint("v") == request.fingerprint("v")


class TestBackendExemption:
    """backend is audited out of the fingerprint, not forgotten.

    The flat and object engines are bit-identical by contract
    (tests/test_engine_flat.py pins it against golden hashes), so the
    engine choice is a pure execution strategy: fingerprinting it would
    fork the result cache on a knob that cannot move a result.  These
    tests mirror the window_jobs exemption above — the exemption table
    stays honest, and equality/hash/fingerprint all agree that two
    requests differing only in backend are the same simulation point.
    """

    def test_backend_in_exempt_table(self):
        from repro.analysis.runner import FINGERPRINT_EXEMPT_REQUEST_FIELDS

        assert "backend" in FINGERPRINT_EXEMPT_REQUEST_FIELDS

    def test_backend_not_in_fingerprint(self):
        assert (
            tiny(backend="flat").fingerprint("v") == tiny().fingerprint("v")
        )

    def test_backend_not_in_equality_or_hash(self):
        assert tiny(backend="flat") == tiny(backend="object")
        assert hash(tiny(backend="flat")) == hash(tiny(backend="object"))

    def test_backend_validated(self):
        with pytest.raises(ValueError, match="backend"):
            tiny(backend="vectorized")

    def test_replace_preserves_identity(self):
        request = tiny(sampling=(1000, 200, 50))
        rewritten = dataclasses.replace(request, backend="flat")
        assert rewritten == request
        assert rewritten.backend == "flat"
        assert rewritten.fingerprint("v") == request.fingerprint("v")

    def test_runner_backend_override_validated(self):
        with pytest.raises(ValueError, match="backend"):
            Runner(backend="vectorized")


class TestResultRoundTrip:
    def test_lossless(self):
        result = execute_request(tiny())
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert rebuilt == result

    def test_preserves_nested_stats(self):
        result = execute_request(tiny())
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.memory.l1.hit_rate == result.memory.l1.hit_rate
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(result)


class TestRunnerCaching:
    def test_cold_run_simulates_then_warm_run_does_not(self, tmp_path):
        cold = Runner(cache_dir=str(tmp_path))
        first = cold.run(tiny())
        assert cold.stats.simulated == 1

        warm = Runner(cache_dir=str(tmp_path))
        second = warm.run(tiny())
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == 1
        assert second == first

    def test_config_change_misses(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        runner.run(tiny())
        other = Runner(cache_dir=str(tmp_path))
        other.run(tiny(memory="perfect"))
        assert other.stats.disk_hits == 0
        assert other.stats.simulated == 1

    def test_seed_change_misses(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        runner.run(tiny())
        other = Runner(cache_dir=str(tmp_path))
        other.run(tiny(seed=3))
        assert other.stats.disk_hits == 0
        assert other.stats.simulated == 1

    def test_code_version_bump_invalidates(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), version="v1")
        runner.run(tiny())
        bumped = Runner(cache_dir=str(tmp_path), version="v2")
        bumped.run(tiny())
        assert bumped.stats.disk_hits == 0
        assert bumped.stats.simulated == 1

    def test_corrupt_cache_entry_resimulated(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), version="v1")
        runner.run(tiny())
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{ not json")
        recovered = Runner(cache_dir=str(tmp_path), version="v1")
        recovered.run(tiny())
        assert recovered.stats.simulated == 1

    def test_no_cache_dir_still_memoizes(self):
        runner = Runner()
        runner.run(tiny())
        runner.run(tiny())
        assert runner.stats.simulated == 1
        assert runner.stats.memo_hits == 1

    def test_traces_cached_on_disk(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path))
        runner.run(tiny())
        traces = os.listdir(runner.trace_dir)
        assert traces and all(t.endswith(".trace") for t in traces)


class TestRunnerDedup:
    def test_duplicate_requests_simulate_once(self):
        runner = Runner()
        results = runner.run_batch([tiny(), tiny(), tiny()])
        assert runner.stats.requested == 3
        assert runner.stats.deduplicated == 2
        assert runner.stats.simulated == 1
        assert len(results) == 1

    def test_distinct_requests_all_run(self):
        runner = Runner()
        batch = [tiny(), tiny(isa="mom")]
        results = runner.run_batch(batch)
        assert runner.stats.simulated == 2
        assert set(results) == set(batch)


class TestRunnerParallel:
    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        batch = [
            tiny(),
            tiny(isa="mom"),
            tiny(memory="perfect"),
            tiny(fetch_policy="icount"),
        ]
        serial = Runner().run_batch(batch)
        parallel = Runner(jobs=2).run_batch(batch)
        for request in batch:
            assert parallel[request] == serial[request], request

    def test_warm_cache_matches_cold_bit_for_bit(self, tmp_path):
        batch = [tiny(), tiny(isa="mom")]
        cold = Runner(cache_dir=str(tmp_path)).run_batch(batch)
        warm_runner = Runner(cache_dir=str(tmp_path))
        warm = warm_runner.run_batch(batch)
        assert warm_runner.stats.simulated == 0
        assert warm == cold


class TestRunnerStats:
    def test_delta_since(self):
        runner = Runner()
        before = runner.stats.snapshot()
        runner.run(tiny())
        delta = runner.stats.delta_since(before)
        assert delta["simulated"] == 1
        assert delta["sim_instructions"] > 0
        assert delta["sim_cycles"] > 0

    def test_cache_hits_carry_sim_provenance(self, tmp_path):
        # A cached result remembers the wall time and size of the run
        # that produced it, so fully-cached sweeps can still report the
        # throughput behind their numbers instead of null.
        cold = Runner(cache_dir=str(tmp_path))
        result = cold.run(tiny())
        warm = Runner(cache_dir=str(tmp_path))
        warm.run(tiny())
        assert warm.stats.simulated == 0
        assert warm.stats.cached_sim_seconds > 0
        assert warm.stats.cached_instructions == (
            result.committed_instructions
        )


class TestArtifactCache:
    def test_computed_once_and_round_tripped(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), version="v1")
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1.5, "names": ["a", "b"]}

        first = runner.artifact("t", {"scale": "1"}, compute)
        again = runner.artifact("t", {"scale": "1"}, compute)
        assert first == again == {"x": 1.5, "names": ["a", "b"]}
        assert len(calls) == 1
        assert runner.stats.artifact_hits == 1

    def test_persists_across_runners(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), version="v1")
        runner.artifact("t", {"scale": "1"}, lambda: [1, 2])
        fresh = Runner(cache_dir=str(tmp_path), version="v1")
        value = fresh.artifact(
            "t", {"scale": "1"}, lambda: pytest.fail("should be cached")
        )
        assert value == [1, 2]
        assert fresh.stats.artifact_hits == 1

    def test_keyed_by_payload_and_version(self, tmp_path):
        runner = Runner(cache_dir=str(tmp_path), version="v1")
        assert runner.artifact("t", {"scale": "1"}, lambda: 1) == 1
        assert runner.artifact("t", {"scale": "2"}, lambda: 2) == 2
        bumped = Runner(cache_dir=str(tmp_path), version="v2")
        assert bumped.artifact("t", {"scale": "1"}, lambda: 3) == 3
