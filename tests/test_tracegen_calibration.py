"""Calibration tests: generated traces must reproduce the paper's Table 3."""

import pytest

from repro.isa.opcodes import Opcode
from repro.tracegen import (
    WORKLOAD_MIXES,
    build_program_trace,
    predicted_counts,
)
from repro.tracegen.mixes import PAPER_MOM_MINSTS
from repro.workloads.mediabench import WORKLOAD_ORDER

SCALE = 2e-5   # shorter traces keep the suite fast; ratios are scale-free

_INSTANCE_WEIGHTS = {"mpeg2dec": 2}


@pytest.fixture(scope="module")
def all_traces():
    traces = {}
    for name in WORKLOAD_MIXES:
        traces[name] = {
            isa: build_program_trace(name, isa, scale=SCALE)
            for isa in ("mmx", "mom")
        }
    return traces


class TestPerProgramCalibration:
    def test_mmx_counts_match_prediction(self, all_traces):
        for name, mix in WORKLOAD_MIXES.items():
            generated = all_traces[name]["mmx"].expanded_length
            predicted = predicted_counts(mix, "mmx")["total"] * 1e6 * SCALE
            assert generated == pytest.approx(predicted, rel=0.02), name

    def test_mom_counts_match_prediction(self, all_traces):
        for name, mix in WORKLOAD_MIXES.items():
            generated = all_traces[name]["mom"].expanded_length
            predicted = predicted_counts(mix, "mom")["total"] * 1e6 * SCALE
            assert generated == pytest.approx(predicted, rel=0.03), name

    def test_mom_mmx_ratio_matches_paper_table3(self, all_traces):
        for name, mix in WORKLOAD_MIXES.items():
            ratio = (
                all_traces[name]["mom"].expanded_length
                / all_traces[name]["mmx"].expanded_length
            )
            paper = PAPER_MOM_MINSTS[name] / mix.mmx_minsts
            # Short test-scale traces carry ~2-3 % emission quantization;
            # at the default experiment scale the ratios land within 0.005.
            assert ratio == pytest.approx(paper, abs=0.03), name

    def test_mesa_identical_under_both_isas(self, all_traces):
        mmx = all_traces["mesa"]["mmx"]
        mom = all_traces["mesa"]["mom"]
        assert mmx.expanded_length == mom.expanded_length
        assert not any(inst.is_simd for inst in mom.instructions)

    def test_class_fractions_match_mix(self, all_traces):
        for name, mix in WORKLOAD_MIXES.items():
            fractions = all_traces[name]["mmx"].class_fractions()
            assert fractions["int"] == pytest.approx(mix.frac_int, abs=0.02)
            assert fractions["simd"] == pytest.approx(mix.frac_simd, abs=0.02)
            assert fractions["mem"] == pytest.approx(mix.frac_mem, abs=0.02)


class TestAggregateCalibration:
    """The paper's headline Table 3 facts, over the full 8-slot workload."""

    @pytest.fixture(scope="class")
    def aggregates(self, all_traces):
        agg = {isa: {"int": 0, "fp": 0, "simd": 0, "mem": 0} for isa in ("mmx", "mom")}
        for name in WORKLOAD_MIXES:
            weight = _INSTANCE_WEIGHTS.get(name, 1)
            for isa in ("mmx", "mom"):
                for key, value in all_traces[name][isa].class_counts().items():
                    agg[isa][key] += weight * value
        return agg

    def test_workload_is_integer_dominated_under_mmx(self, aggregates):
        total = sum(aggregates["mmx"].values())
        assert aggregates["mmx"]["int"] / total == pytest.approx(0.62, abs=0.02)

    def test_simd_is_minority_under_mmx(self, aggregates):
        total = sum(aggregates["mmx"].values())
        assert aggregates["mmx"]["simd"] / total == pytest.approx(0.16, abs=0.02)

    def test_mom_cuts_integer_by_20_percent(self, aggregates):
        cut = 1 - aggregates["mom"]["int"] / aggregates["mmx"]["int"]
        assert cut == pytest.approx(0.20, abs=0.03)

    def test_mom_cuts_memory_by_7_percent(self, aggregates):
        cut = 1 - aggregates["mom"]["mem"] / aggregates["mmx"]["mem"]
        assert cut == pytest.approx(0.07, abs=0.03)

    def test_mom_cuts_simd_ops_by_62_percent(self, aggregates):
        cut = 1 - aggregates["mom"]["simd"] / aggregates["mmx"]["simd"]
        assert cut == pytest.approx(0.62, abs=0.04)

    def test_total_ratio_matches_1087_over_1429(self, aggregates):
        ratio = sum(aggregates["mom"].values()) / sum(aggregates["mmx"].values())
        assert ratio == pytest.approx(1087 / 1429, abs=0.02)

    def test_mom_integer_share_not_reduced(self, aggregates):
        """Paper: MOM slightly *increases* the integer percentage."""
        mmx_share = aggregates["mmx"]["int"] / sum(aggregates["mmx"].values())
        mom_share = aggregates["mom"]["int"] / sum(aggregates["mom"].values())
        assert mom_share >= mmx_share


class TestTraceStructure:
    def test_deterministic_for_same_seed(self):
        a = build_program_trace("gsmenc", "mmx", scale=SCALE, seed=3)
        b = build_program_trace("gsmenc", "mmx", scale=SCALE, seed=3)
        assert len(a) == len(b)
        assert all(
            x.op == y.op and x.pc == y.pc and x.mem_addr == y.mem_addr
            for x, y in zip(a.instructions, b.instructions)
        )

    def test_different_seeds_differ(self):
        a = build_program_trace("gsmenc", "mmx", scale=SCALE, seed=3)
        b = build_program_trace("gsmenc", "mmx", scale=SCALE, seed=4)
        assert any(
            x.mem_addr != y.mem_addr for x, y in zip(a.instructions, b.instructions)
        )

    def test_pcs_repeat_loops(self):
        trace = build_program_trace("mpeg2enc", "mmx", scale=SCALE)
        pcs = [inst.pc for inst in trace.instructions]
        assert len(set(pcs)) < len(pcs) / 3   # static code replayed

    def test_branches_present_and_mostly_taken(self):
        trace = build_program_trace("mpeg2enc", "mmx", scale=SCALE)
        branches = [i for i in trace.instructions if i.is_branch]
        assert len(branches) > 100
        taken = sum(1 for b in branches if b.taken)
        assert 0.4 < taken / len(branches) < 0.95

    def test_mom_traces_have_streams(self):
        trace = build_program_trace("mpeg2enc", "mom", scale=SCALE)
        streams = [i for i in trace.instructions if i.stream_length > 1]
        assert streams
        assert all(1 < s.stream_length <= 16 for s in streams)

    def test_mom_stream_memory_has_stride(self):
        trace = build_program_trace("jpegenc", "mom", scale=SCALE)
        loads = [i for i in trace.instructions if i.op is Opcode.MOM_LOAD]
        assert loads
        assert all(load.stride > 0 for load in loads)

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            build_program_trace("nosuch", "mmx")

    def test_silly_scale_rejected(self):
        with pytest.raises(ValueError):
            build_program_trace("gsmdec", "mmx", scale=1e-9)

    def test_mmx_equivalent_set(self, all_traces):
        for name in WORKLOAD_MIXES:
            mom = all_traces[name]["mom"]
            mmx = all_traces[name]["mmx"]
            assert mom.mmx_equivalent == pytest.approx(
                mmx.expanded_length, rel=0.02
            )


class TestWorkloadRegistry:
    def test_order_has_eight_slots_with_mpeg2dec_twice(self):
        assert len(WORKLOAD_ORDER) == 8
        assert WORKLOAD_ORDER.count("mpeg2dec") == 2

    def test_order_covers_all_programs(self):
        assert set(WORKLOAD_ORDER) == set(WORKLOAD_MIXES)
