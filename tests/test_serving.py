"""Serving-scenario tests: traffic, admission, simulation, metering.

Property tests (hypothesis) pin the deterministic contracts — schedules
are seed-stable and sorted, admission never exceeds the machine's slot
count and conserves every offered stream, trace rebasing moves only code
addresses — and the simulator tests run real open-loop scenarios at
smoke scale end to end: conservation, determinism, policy distinctness,
and per-stream stall attribution.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stats import percentile
from repro.serving.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    Slot,
)
from repro.serving.simulator import (
    ServingSimulator,
    build_serving_machine,
    derive_interarrival,
)
from repro.serving.metering import meter_result
from repro.workloads.mediabench import build_stream_trace_variants
from repro.workloads.streams import (
    CODE_BASE_STRIDE,
    SERVING_MIXES,
    STREAM_DEADLINE_SLACK,
    StreamDescriptor,
    generate_stream_schedule,
    rebase_trace,
)

SCALE = 1.2e-5
SRC = os.path.join(os.path.dirname(__file__), "..", "src")


# ----- arrival schedules ------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    n_streams=st.integers(min_value=1, max_value=40),
    mean=st.integers(min_value=1, max_value=5000),
    seed=st.integers(min_value=0, max_value=2**31),
    mix=st.sampled_from(sorted(SERVING_MIXES)),
)
def test_schedule_is_sorted_valid_and_seed_stable(n_streams, mean, seed, mix):
    first = generate_stream_schedule(n_streams, mean, seed=seed, mix=mix)
    second = generate_stream_schedule(n_streams, mean, seed=seed, mix=mix)
    assert first == second, "equal arguments must yield equal schedules"
    assert [s.stream_id for s in first] == list(range(n_streams))
    mix_programs = {name for name, __ in SERVING_MIXES[mix]}
    previous = 0
    for stream in first:
        assert stream.arrival > previous, "arrivals strictly increase"
        previous = stream.arrival
        assert stream.program in mix_programs
        assert stream.deadline_slack == STREAM_DEADLINE_SLACK[stream.program]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    slack_scale=st.floats(min_value=0.1, max_value=10.0),
)
def test_slack_scale_multiplies_deadline_slack(seed, slack_scale):
    schedule = generate_stream_schedule(
        8, 100, seed=seed, slack_scale=slack_scale
    )
    for stream in schedule:
        base = STREAM_DEADLINE_SLACK[stream.program]
        assert stream.deadline_slack == pytest.approx(base * slack_scale)
        assert stream.deadline(1000) >= stream.arrival + 1


def test_schedule_rejects_bad_arguments():
    with pytest.raises(ValueError):
        generate_stream_schedule(0, 100)
    with pytest.raises(ValueError):
        generate_stream_schedule(4, 0)
    with pytest.raises(ValueError):
        generate_stream_schedule(4, 100, mix="nope")
    with pytest.raises(ValueError):
        generate_stream_schedule(4, 100, slack_scale=0.0)


# ----- trace variants and rebasing -------------------------------------------


def test_stream_variants_mirror_workload_seeds():
    variants = build_stream_trace_variants(
        "mmx", {"gsmdec": 2}, scale=SCALE, seed=0
    )
    assert len(variants["gsmdec"]) == 2
    first, second = variants["gsmdec"]
    # Distinct per-instance seeds: different executions of one program.
    assert len(first) != len(second) or any(
        a.pc != b.pc or a.op is not b.op
        for a, b in zip(first.instructions, second.instructions)
    )
    for trace in (first, second):
        assert trace.name == "gsmdec"
        assert trace.isa == "mmx"


def test_stream_variants_reject_unknown_names():
    with pytest.raises(ValueError):
        build_stream_trace_variants("mmx", {"nope": 1}, scale=SCALE)
    with pytest.raises(ValueError):
        build_stream_trace_variants("vliw", {"gsmdec": 1}, scale=SCALE)


def test_rebase_trace_moves_code_addresses_only():
    trace = build_stream_trace_variants(
        "mom", {"jpegdec": 1}, scale=SCALE
    )["jpegdec"][0]
    moved = rebase_trace(trace, CODE_BASE_STRIDE * 3)
    assert len(moved) == len(trace)
    assert moved.expanded_length == trace.expanded_length
    for before, after in zip(trace.instructions, moved.instructions):
        assert after.pc == before.pc + CODE_BASE_STRIDE * 3
        assert after.op is before.op
        assert after.mem_addr == before.mem_addr
        assert after.stream_length == before.stream_length
        if before.is_branch:
            assert after.target == before.target + CODE_BASE_STRIDE * 3
        else:
            assert after.target == before.target
        # Fetch groups break at the same instructions either way.
        assert after.pc >> 5 == (before.pc >> 5) + CODE_BASE_STRIDE * 3 // 32


def test_rebase_trace_zero_offset_is_identity():
    trace = build_stream_trace_variants(
        "mmx", {"gsmenc": 1}, scale=SCALE
    )["gsmenc"][0]
    assert rebase_trace(trace, 0) is trace
    with pytest.raises(ValueError):
        rebase_trace(trace, 16)  # not a line multiple
    with pytest.raises(ValueError):
        rebase_trace(trace, -32)


# ----- admission control ------------------------------------------------------


def _stream(stream_id, program="gsmdec", arrival=None):
    return StreamDescriptor(
        stream_id=stream_id,
        program=program,
        arrival=arrival if arrival is not None else stream_id + 1,
        deadline_slack=STREAM_DEADLINE_SLACK[program],
    )


@settings(max_examples=40, deadline=None)
@given(
    n_cores=st.integers(min_value=1, max_value=4),
    contexts=st.integers(min_value=1, max_value=4),
    policy=st.sampled_from(ADMISSION_POLICIES),
    queue_limit=st.integers(min_value=0, max_value=4),
    events=st.lists(st.integers(min_value=0, max_value=2), max_size=40),
)
def test_admission_capacity_and_conservation(
    n_cores, contexts, policy, queue_limit, events
):
    """Random offer/release interleavings: busy never exceeds the slot
    count, and every offered stream is admitted, queued or rejected —
    exactly one of the three."""
    admission = AdmissionController(
        n_cores, contexts, policy=policy, queue_limit=queue_limit
    )
    programs = sorted(STREAM_DEADLINE_SLACK)
    active: list[Slot] = []
    next_id = 0
    for event in events:
        if event < 2:  # offer (twice as likely as release)
            stream = _stream(next_id, programs[next_id % len(programs)])
            next_id += 1
            outcome, slot = admission.offer(stream)
            assert outcome in ("admitted", "queued", "rejected")
            if outcome == "admitted":
                assert slot is not None
                assert slot not in active, "placed on a busy slot"
                active.append(slot)
            else:
                assert slot is None
        elif active:
            promoted = admission.release(active.pop(0))
            if promoted is not None:
                stream, slot = promoted
                assert slot not in active
                active.append(slot)
        assert admission.busy == len(active)
        assert admission.busy <= n_cores * contexts
        assert len(admission.queue) <= queue_limit
        # Conservation: the three outcomes partition the offered count.
        in_queue = len(admission.queue)
        assert (
            admission.admitted + in_queue + admission.rejected
            == admission.offered
        )
        assert admission.queued >= in_queue  # queued counts entries ever


def test_rr_rotates_and_least_balances():
    rr = AdmissionController(2, 2, policy="rr")
    placements = [rr.offer(_stream(i))[1] for i in range(4)]
    assert placements == [Slot(0, 0), Slot(0, 1), Slot(1, 0), Slot(1, 1)]

    least = AdmissionController(2, 2, policy="least")
    assert least.offer(_stream(0))[1] == Slot(0, 0)
    # Core 0 now has one busy context: least-loaded goes to core 1.
    assert least.offer(_stream(1))[1] == Slot(1, 0)
    assert least.offer(_stream(2))[1] == Slot(0, 1)


def test_affinity_prefers_warm_slot():
    admission = AdmissionController(2, 2, policy="affinity")
    admission.offer(_stream(0, "mpeg2dec"))          # -> (0, 0), stays busy
    __, other = admission.offer(_stream(1, "gsmenc"))   # -> (1, 0)
    __, warm = admission.offer(_stream(2, "mpeg2dec"))  # -> (0, 1)
    assert warm == Slot(0, 1)
    admission.release(warm)
    admission.release(other)
    # Least-loaded would now pick idle core 1; affinity takes the free
    # slot that last ran the same program instead.
    __, placed = admission.offer(_stream(3, "mpeg2dec"))
    assert placed == warm, "free slot that last ran the program wins"


def test_release_requires_busy_slot_and_promotes_fifo():
    admission = AdmissionController(1, 1, policy="rr", queue_limit=2)
    with pytest.raises(ValueError):
        admission.release(Slot(0, 0))
    __, slot = admission.offer(_stream(0))
    assert admission.offer(_stream(1))[0] == "queued"
    assert admission.offer(_stream(2))[0] == "queued"
    assert admission.offer(_stream(3))[0] == "rejected"
    stream, placed = admission.release(slot)
    assert stream.stream_id == 1, "queue promotes in FIFO order"
    assert placed == slot


# ----- percentile (metering dependency) --------------------------------------


def test_percentile_nearest_rank():
    samples = [float(v) for v in range(1, 11)]
    assert percentile(samples, 0.50) == 5.0
    assert percentile(samples, 0.95) == 10.0
    assert percentile(samples, 1.0) == 10.0
    assert percentile([3.0], 0.99) == 3.0
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# ----- the simulator end to end ----------------------------------------------


def _run_scenario(
    isa="mmx",
    arch="cmp",
    cores=2,
    contexts=2,
    policy="rr",
    n_streams=8,
    memory="conventional",
    seed=0,
    load=0.85,
    observe="metrics",
):
    schedule_seed = seed
    variants_needed: dict[str, int] = {}
    # Palette for the load heuristic: variant 0 of every program.
    palette = {
        name: traces[0]
        for name, traces in build_stream_trace_variants(
            isa, {name: 1 for name in sorted(STREAM_DEADLINE_SLACK)},
            scale=SCALE, seed=seed,
        ).items()
    }
    interarrival = derive_interarrival(palette, "mixed", load, cores * contexts)
    schedule = generate_stream_schedule(
        n_streams, interarrival, seed=schedule_seed
    )
    for stream in schedule:
        variants_needed[stream.program] = (
            variants_needed.get(stream.program, 0) + 1
        )
    variants = build_stream_trace_variants(
        isa, variants_needed, scale=SCALE, seed=seed
    )
    seen: dict[str, int] = {}
    traces_by_stream = {}
    for stream in schedule:
        index = seen.get(stream.program, 0)
        seen[stream.program] = index + 1
        traces_by_stream[stream.stream_id] = rebase_trace(
            variants[stream.program][index],
            stream.stream_id * CODE_BASE_STRIDE,
        )
    machine_traces = list(traces_by_stream.values())
    machine, scheduler = build_serving_machine(
        arch, isa, cores, contexts, memory, machine_traces, observe=observe
    )
    admission = AdmissionController(cores, contexts, policy=policy)
    simulator = ServingSimulator(
        machine, scheduler, admission, schedule, traces_by_stream
    )
    return meter_result(simulator.run(), machine, admission), schedule


@pytest.fixture(scope="module")
def metered():
    return _run_scenario()[0]


def test_simulator_conserves_streams(metered):
    summary = metered["summary"]
    assert summary["completed"] + summary["rejected"] == summary["offered"]
    assert summary["offered"] == 8
    per_program_total = sum(
        entry["completed"] + entry["rejected"]
        for entry in metered["per_program"].values()
    )
    assert per_program_total == summary["offered"]


def test_stream_records_are_internally_consistent(metered):
    for record in metered["streams"]:
        assert record["latency"] == record["completed"] - record["arrival"]
        assert record["queue_wait"] == record["admitted"] - record["arrival"]
        assert record["service"] == record["latency"] - record["queue_wait"]
        assert record["queue_wait"] >= 0
        assert record["service"] > 0
        assert record["committed"] > 0
        assert record["missed"] == (record["completed"] > record["deadline"])


def test_per_stream_stall_attribution(metered):
    from repro.obs.events import STALL_CAUSES

    assert any(record["stalls"] for record in metered["streams"])
    for record in metered["streams"]:
        for cause, count in record["stalls"].items():
            assert cause in STALL_CAUSES
            assert count > 0, "zero entries are elided"


def test_simulator_is_deterministic():
    first, __ = _run_scenario(isa="mom", policy="least")
    second, __ = _run_scenario(isa="mom", policy="least")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_policies_place_streams_differently():
    by_policy = {
        policy: _run_scenario(policy=policy, n_streams=12)[0]
        for policy in ADMISSION_POLICIES
    }
    placements = {
        policy: [
            (record["core"], record["context"])
            for record in result["streams"]
        ]
        for policy, result in by_policy.items()
    }
    assert len({json.dumps(p) for p in placements.values()}) >= 2, (
        "the three policies must not collapse to identical placements"
    )


def test_smt_and_cmp_shapes_both_serve():
    smt, __ = _run_scenario(arch="smt", cores=1, contexts=4)
    cmp_result, __ = _run_scenario(arch="cmp", cores=2, contexts=2)
    for result in (smt, cmp_result):
        assert result["summary"]["completed"] == 8
        assert result["summary"]["eipc"] > 0
    assert smt["memory"]["icache_hit_rate"] > 0.5
    assert cmp_result["admission"]["admitted"] == 8


def test_observe_none_strips_stall_attribution():
    result, __ = _run_scenario(observe=None, n_streams=4)
    assert all(record["stalls"] == {} for record in result["streams"])


_HASHSEED_CHILD = """
import hashlib, json
from repro.analysis.serving import ServingRequest, execute_serving_request
result = execute_serving_request(ServingRequest(
    isa="mom", arch="cmp", cores=2, contexts=2, policy="least",
    n_streams=6, scale=1.2e-5,
))
blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
print(hashlib.sha256(blob.encode()).hexdigest())
"""


@pytest.mark.parametrize("hashseed", ["0", "31337"])
def test_serving_results_are_hashseed_independent(hashseed, tmp_path):
    # Different PYTHONHASHSEED values randomize set/dict iteration
    # order; a serving outcome that depends on it diverges here.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_CHILD],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    digest = proc.stdout.strip()
    reference_path = tmp_path.parent / "serving-hashseed-reference.txt"
    try:
        with open(reference_path, "x") as handle:
            handle.write(digest)
    except FileExistsError:
        with open(reference_path) as handle:
            assert digest == handle.read(), (
                f"serving hash changed under PYTHONHASHSEED={hashseed}: "
                "a set/dict iteration order is leaking into the scenario"
            )
