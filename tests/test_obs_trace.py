"""Observability layer: observers never perturb runs, metrics/registry
semantics, Chrome-trace schema, ASCII round-trip, pipetrace tool CLI."""

import json
import os
import sys

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.core.rob import GraduationWindow
from repro.memory import ConventionalHierarchy, DecoupledHierarchy
from repro.obs import (
    Counter,
    Histogram,
    InstRecord,
    MetricsRegistry,
    PhaseProfiler,
    PipelineObserver,
    chrome_trace,
    parse_ascii,
    render_ascii,
    validate_chrome_trace,
    validate_records,
)
from repro.tracegen import build_program_trace

SCALE = 2e-5

SCRIPTS_DIR = os.path.join(os.path.dirname(__file__), "..", "scripts")
sys.path.insert(0, SCRIPTS_DIR)

import pipetrace_tool  # noqa: E402


def run_observed(isa="mom", n_threads=8, memory_cls=ConventionalHierarchy,
                 observe=True, **kwargs):
    traces = [
        build_program_trace("jpegenc", isa, scale=SCALE),
        build_program_trace("gsmdec", isa, scale=SCALE),
    ]
    processor = SMTProcessor(
        SMTConfig(isa=isa, n_threads=n_threads, observe=observe),
        memory_cls(),
        traces,
        completions_target=1,
        warmup_fraction=0.0,
        **kwargs,
    )
    return processor, processor.run()


def result_key(result):
    return (
        result.cycles,
        result.committed_instructions,
        result.committed_equivalent,
        result.program_completions,
        result.mispredict_rate,
    )


# ----- observation never perturbs the simulation -----------------------------


@pytest.mark.parametrize(
    "isa,memory_cls",
    [("mom", ConventionalHierarchy), ("mom", DecoupledHierarchy),
     ("mmx", ConventionalHierarchy)],
)
def test_observed_run_is_bit_identical(isa, memory_cls):
    processor, observed = run_observed(isa, 8, memory_cls)
    assert processor.observer is not None
    plain_proc, plain = run_observed(isa, 8, memory_cls, observe=None)
    assert plain_proc.observer is None
    assert result_key(observed) == result_key(plain)
    assert observed.observability is not None
    assert plain.observability is None


def test_observer_off_by_default_and_unhooked():
    processor, __ = run_observed(observe=None)
    assert processor.observer is None
    assert processor.window.observer is None
    assert processor.memory.observer is None
    assert processor.memory.l1.mshr.observer is None
    assert processor.memory.l2.observer is None
    assert processor.memory.l1.write_buffer.observer is None


def test_metrics_only_mode_skips_event_lists():
    processor, result = run_observed(observe="metrics")
    observer = processor.observer
    assert observer.events is False
    assert observer.records == [] and observer.mem_events == []
    snap = result.observability
    assert snap["records"] == 0
    assert snap["metrics"]["smt.commit"]["instructions"]["total"] > 0
    # Per-thread stall attribution still collected.
    assert "smt.stall" in snap["metrics"]


def test_records_cover_the_run_and_validate():
    processor, result = run_observed()
    observer = processor.observer
    assert validate_records(observer.records) == len(observer.records)
    committed = [r for r in observer.records if r.committed]
    # MOM streams commit weighted; record count is per instruction.
    assert len(committed) <= result.committed_instructions
    assert observer.mem_events, "memory hooks emitted nothing"
    components = {event[1] for event in observer.mem_events}
    assert "l1" in components and "icache" in components
    snap = result.observability
    assert snap["records"] == len(observer.records)
    json.dumps(snap)  # snapshot must be JSON-safe


def test_decoupled_run_emits_stream_bypass_events():
    processor, __ = run_observed("mom", 8, DecoupledHierarchy)
    components = {event[1] for event in processor.observer.mem_events}
    assert "stream_bypass" in components
    metrics = processor.observer.registry.to_dict()
    assert "memory.stream_bypass" in metrics


def test_stall_breakdown_is_per_thread():
    processor, __ = run_observed()
    breakdown = processor.observer.stall_breakdown()
    assert breakdown, "an 8T run at this scale must stall somewhere"
    for cause, row in breakdown.items():
        assert row["total"] == sum(row["per_thread"])


def test_max_records_cap_keeps_metrics_counting():
    observer = PipelineObserver(max_records=10)
    processor, result = run_observed(observe=observer)
    assert len(observer.records) == 10
    assert observer.dropped_records > 0
    snap = result.observability
    assert snap["dropped_records"] == observer.dropped_records
    # Metrics keep counting past the record cap.
    assert snap["metrics"]["smt.fetch"]["instructions"]["total"] > 10
    validate_records(observer.records)


def test_squash_hook_marks_records():
    window = GraduationWindow(capacity=8, n_threads=1)
    observer = PipelineObserver()
    window.observer = observer

    class Entry:
        def __init__(self):
            self.squashed = False

    entries = [Entry(), Entry()]
    records = []
    for uid, entry in enumerate(entries):
        record = InstRecord(uid, 0, 0x100 + 4 * uid, 0, 1, 5 + uid, False)
        record.dispatch = 7 + uid
        observer._by_entry[id(entry)] = record
        records.append(record)
        window.insert(0, entry)
    window.flush_thread(0, now=12)
    assert all(r.squash == 12 for r in records)
    assert all(e.squashed for e in entries)
    assert not observer._by_entry
    validate_records(records)


# ----- metrics registry ------------------------------------------------------


def test_counter_per_thread_and_untyped():
    counter = Counter()
    counter.add(0)
    counter.add(3, 5)
    counter.add(-1, 2)
    assert counter.per_thread == [1, 0, 0, 5]
    assert counter.untyped == 2
    assert counter.total == 8
    assert counter.to_dict() == {
        "total": 8, "per_thread": [1, 0, 0, 5], "untyped": 2,
    }


def test_histogram_buckets_and_stats():
    histogram = Histogram(bounds=(1, 4, 16))
    for value in (0, 1, 2, 4, 5, 100):
        histogram.observe(value, thread=0)
    assert histogram.buckets == [2, 2, 1, 1]
    assert histogram.count == 6
    assert histogram.min == 0 and histogram.max == 100
    assert histogram.mean == pytest.approx(112 / 6)
    payload = histogram.to_dict()
    assert payload["bounds"] == [1, 4, 16]
    assert payload["per_thread"] == [6]


def test_registry_caches_instruments_and_serializes():
    registry = MetricsRegistry()
    counter = registry.counter("smt.fetch", "instructions")
    assert registry.counter("smt.fetch", "instructions") is counter
    histogram = registry.histogram("memory.l1", "latency")
    assert registry.histogram("memory.l1", "latency") is histogram
    counter.add(0)
    histogram.observe(3, 1)
    tree = registry.to_dict()
    assert registry.components() == ["memory.l1", "smt.fetch"]
    assert "buckets" in tree["memory.l1"]["latency"]
    assert "buckets" not in tree["smt.fetch"]["instructions"]


def test_phase_profiler_nests_and_accumulates():
    ticks = iter(range(100))
    profiler = PhaseProfiler(clock=lambda: next(ticks))
    with profiler.phase("sweep"):
        with profiler.phase("point"):
            pass
        with profiler.phase("point"):
            pass
    tree = profiler.to_dict()
    sweep = tree["phases"]["sweep"]
    assert sweep["count"] == 1
    assert sweep["phases"]["point"]["count"] == 2
    assert sweep["seconds"] >= sweep["phases"]["point"]["seconds"]


# ----- chrome trace ----------------------------------------------------------


def test_chrome_trace_schema_validates():
    processor, __ = run_observed()
    observer = processor.observer
    document = chrome_trace(observer.records[:300], observer.mem_events[:100])
    count = validate_chrome_trace(document)
    assert count > 300
    json.dumps(document)
    phases = {event["ph"] for event in document["traceEvents"]}
    assert phases == {"X", "i", "M"}


@pytest.mark.parametrize(
    "mutate,message",
    [
        (lambda d: d.pop("traceEvents"), "traceEvents"),
        (lambda d: d["traceEvents"].append({"ph": "X", "name": "x"}),
         "missing"),
        (lambda d: d["traceEvents"].append(
            {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}),
         "negative"),
        (lambda d: d["traceEvents"].append(
            {"name": "x", "ph": "i", "ts": 0, "s": "z", "pid": 0, "tid": 0}),
         "scope"),
        (lambda d: d["traceEvents"].append(
            {"name": "x", "ph": "Q", "ts": 0, "pid": 0, "tid": 0}),
         "phase"),
    ],
)
def test_chrome_trace_schema_rejects_bad_events(mutate, message):
    document = chrome_trace([])
    mutate(document)
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(document)


# ----- ascii round-trip ------------------------------------------------------


def record_fields(record):
    return (
        record.uid, record.thread, record.pc, record.op,
        record.stream_length, record.mispredicted, record.fetch,
        record.dispatch, record.issue, record.complete, record.commit,
        record.squash,
    )


def test_ascii_round_trips_mom_8t_run():
    # Acceptance criterion: the ASCII renderer round-trips a MOM/8T run.
    processor, __ = run_observed("mom", 8, ConventionalHierarchy)
    records = processor.observer.records
    text = render_ascii(records, max_width=1 << 20)
    parsed = parse_ascii(text)
    assert len(parsed) == len(records)
    for original, restored in zip(records, parsed):
        assert record_fields(original) == record_fields(restored)


def test_ascii_round_trips_partial_and_squashed_records():
    full = InstRecord(0, 0, 0x40, 3, 8, 10, True)
    full.dispatch, full.issue, full.complete, full.commit = 11, 13, 20, 20
    inflight = InstRecord(1, 2, 0x44, 5, 1, 12, False)
    inflight.dispatch = 14
    squashed = InstRecord(2, 1, 0x48, 7, 1, 13, False)
    squashed.dispatch, squashed.issue = 14, 15
    squashed.squash = 16
    records = [full, inflight, squashed]
    parsed = parse_ascii(render_ascii(records))
    for original, restored in zip(records, parsed):
        assert record_fields(original) == record_fields(restored)
    # The only legal stage collision: complete == commit renders as 'C'.
    assert "X" not in render_ascii([full]).splitlines()[1]


def test_ascii_rejects_garbage():
    with pytest.raises(ValueError, match="unparseable"):
        parse_ascii("# base=0\nnot a row\n")
    record = InstRecord(0, 0, 0, 0, 1, 0, False)
    record.commit = 1 << 13
    with pytest.raises(ValueError, match="max_width"):
        render_ascii([record], max_width=16)


# ----- pipetrace tool CLI ----------------------------------------------------


def test_pipetrace_tool_chrome_output_validates(tmp_path):
    out = tmp_path / "trace.json"
    code = pipetrace_tool.main([
        "run", "--isa", "mom", "--threads", "8", "--scale", "2e-5",
        "--first", "40", "--output", str(out),
    ])
    assert code == 0
    document = json.loads(out.read_text())
    assert validate_chrome_trace(document) > 0
    assert pipetrace_tool.main(["check", str(out)]) == 0


def test_pipetrace_tool_check_rejects_corrupt(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    assert pipetrace_tool.main(["check", str(bad)]) == 1


def test_pipetrace_tool_ascii_round_trips(tmp_path, capsys):
    out = tmp_path / "pipe.txt"
    code = pipetrace_tool.main([
        "run", "--isa", "mom", "--threads", "8", "--scale", "2e-5",
        "--first", "25", "--format", "ascii", "--output", str(out),
    ])
    assert code == 0
    parsed = parse_ascii(out.read_text())
    assert len(parsed) == 25


def test_config_rejects_bogus_observe():
    with pytest.raises(ValueError, match="observe"):
        SMTConfig(observe=42)
