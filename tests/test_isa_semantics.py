"""Tests for the executable µ-SIMD semantics against scalar references."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.datatypes import ElementType as ET, pack_lanes, unpack_lanes
from repro.isa.semantics import (
    PackedAccumulator,
    execute_mmx,
    execute_mmx3,
    execute_mom,
    pmaddwd,
    psadbw,
)


def words16(draw, n=4, lo=-32768, hi=32767):
    return draw(st.lists(st.integers(lo, hi), min_size=n, max_size=n))


u64 = st.integers(0, (1 << 64) - 1)
i16x4 = st.lists(st.integers(-32768, 32767), min_size=4, max_size=4)
u8x8 = st.lists(st.integers(0, 255), min_size=8, max_size=8)


class TestArithmetic:
    @given(i16x4, i16x4)
    def test_paddw_is_modular(self, xs, ys):
        out = unpack_lanes(
            execute_mmx("paddw", pack_lanes(xs, ET.INT16), pack_lanes(ys, ET.INT16)),
            ET.INT16,
        )
        for x, y, o in zip(xs, ys, out):
            assert (o - (x + y)) % (1 << 16) == 0

    @given(i16x4, i16x4)
    def test_paddsw_saturates(self, xs, ys):
        out = unpack_lanes(
            execute_mmx("paddsw", pack_lanes(xs, ET.INT16), pack_lanes(ys, ET.INT16)),
            ET.INT16,
        )
        for x, y, o in zip(xs, ys, out):
            assert o == max(-32768, min(32767, x + y))

    @given(u8x8, u8x8)
    def test_paddusb_saturates_unsigned(self, xs, ys):
        out = unpack_lanes(
            execute_mmx("paddusb", pack_lanes(xs, ET.UINT8), pack_lanes(ys, ET.UINT8)),
            ET.UINT8,
        )
        for x, y, o in zip(xs, ys, out):
            assert o == min(255, x + y)

    @given(u8x8, u8x8)
    def test_psubusb_floors_at_zero(self, xs, ys):
        out = unpack_lanes(
            execute_mmx("psubusb", pack_lanes(xs, ET.UINT8), pack_lanes(ys, ET.UINT8)),
            ET.UINT8,
        )
        for x, y, o in zip(xs, ys, out):
            assert o == max(0, x - y)

    @given(i16x4, i16x4)
    def test_pmulhw_keeps_high_half(self, xs, ys):
        out = unpack_lanes(
            execute_mmx("pmulhw", pack_lanes(xs, ET.INT16), pack_lanes(ys, ET.INT16)),
            ET.INT16,
        )
        for x, y, o in zip(xs, ys, out):
            assert o == (x * y) >> 16

    @given(u8x8, u8x8)
    def test_pavgb_rounds_up(self, xs, ys):
        out = unpack_lanes(
            execute_mmx("pavgb", pack_lanes(xs, ET.UINT8), pack_lanes(ys, ET.UINT8)),
            ET.UINT8,
        )
        for x, y, o in zip(xs, ys, out):
            assert o == (x + y + 1) >> 1

    @given(u8x8, u8x8)
    def test_min_max_elementwise(self, xs, ys):
        a, b = pack_lanes(xs, ET.UINT8), pack_lanes(ys, ET.UINT8)
        assert unpack_lanes(execute_mmx("pminub", a, b), ET.UINT8) == [
            min(x, y) for x, y in zip(xs, ys)
        ]
        assert unpack_lanes(execute_mmx("pmaxub", a, b), ET.UINT8) == [
            max(x, y) for x, y in zip(xs, ys)
        ]


class TestMultiplyAdd:
    @given(i16x4, i16x4)
    def test_pmaddwd_reference(self, xs, ys):
        out = unpack_lanes(pmaddwd(pack_lanes(xs, ET.INT16), pack_lanes(ys, ET.INT16)), ET.INT32)
        expected0 = xs[0] * ys[0] + xs[1] * ys[1]
        expected1 = xs[2] * ys[2] + xs[3] * ys[3]
        # pmaddwd wraps at 32 bits (overflow only at extreme corner values).
        assert (out[0] - expected0) % (1 << 32) == 0
        assert (out[1] - expected1) % (1 << 32) == 0

    @given(u8x8, u8x8)
    def test_psadbw_reference(self, xs, ys):
        got = psadbw(pack_lanes(xs, ET.UINT8), pack_lanes(ys, ET.UINT8))
        assert got == sum(abs(x - y) for x, y in zip(xs, ys))

    @given(u8x8)
    def test_psadbw_self_is_zero(self, xs):
        a = pack_lanes(xs, ET.UINT8)
        assert psadbw(a, a) == 0


class TestLogicAndFormat:
    @given(u64, u64)
    def test_logic_ops(self, a, b):
        mask = (1 << 64) - 1
        assert execute_mmx("pand", a, b) == a & b
        assert execute_mmx("por", a, b) == a | b
        assert execute_mmx("pxor", a, b) == a ^ b
        assert execute_mmx("pandn", a, b) == (~a & b) & mask

    def test_pack_saturates(self):
        a = pack_lanes([300, -300, 5, 0], ET.INT16)
        b = pack_lanes([1, 2, 3, 4], ET.INT16)
        out = unpack_lanes(execute_mmx("packsswb", a, b), ET.INT8)
        assert out == [127, -128, 5, 0, 1, 2, 3, 4]

    def test_unpack_low_interleaves(self):
        a = pack_lanes([1, 2, 3, 4], ET.INT16)
        b = pack_lanes([5, 6, 7, 8], ET.INT16)
        assert unpack_lanes(execute_mmx("punpcklwd", a, b), ET.INT16) == [1, 5, 2, 6]

    def test_unpack_high_interleaves(self):
        a = pack_lanes([1, 2, 3, 4], ET.INT16)
        b = pack_lanes([5, 6, 7, 8], ET.INT16)
        assert unpack_lanes(execute_mmx("punpckhwd", a, b), ET.INT16) == [3, 7, 4, 8]

    @given(i16x4, st.integers(0, 15))
    def test_shift_left_right_inverse_for_small_values(self, xs, shift):
        small = [x >> 8 for x in xs]  # keep headroom
        a = pack_lanes(small, ET.INT16)
        left = execute_mmx("psllw", a, imm=shift)
        back = execute_mmx("psrlw", left, imm=shift)
        if all(v >= 0 for v in small) and shift <= 7:
            assert unpack_lanes(back, ET.UINT16) == [v for v in small]

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            execute_mmx("pbogus", 0, 0)


class TestThreeSource:
    @given(u64, u64, u64)
    def test_pselect_bitwise(self, a, b, c):
        out = execute_mmx3("pselect", a, b, c)
        assert out == ((a & b) | (~a & c)) & ((1 << 64) - 1)

    @given(i16x4, i16x4)
    def test_pmadd3_accumulates(self, xs, ys):
        a, b = pack_lanes(xs, ET.INT16), pack_lanes(ys, ET.INT16)
        zero = 0
        assert execute_mmx3("pmadd3wd", a, b, zero) == pmaddwd(a, b)


class TestMomStreams:
    @given(st.lists(i16x4, min_size=1, max_size=16), st.data())
    def test_stream_equals_elementwise_mmx(self, rows, data):
        stream_a = [pack_lanes(r, ET.INT16) for r in rows]
        rows_b = [
            data.draw(st.lists(st.integers(-32768, 32767), min_size=4, max_size=4))
            for __ in rows
        ]
        stream_b = [pack_lanes(r, ET.INT16) for r in rows_b]
        got = execute_mom("vaddsw", stream_a, stream_b)
        expected = [execute_mmx("paddsw", a, b) for a, b in zip(stream_a, stream_b)]
        assert got == expected

    def test_stream_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            execute_mom("vaddw", [0, 0], [0])

    def test_non_stream_mnemonic_rejected(self):
        with pytest.raises(KeyError):
            execute_mom("paddw", [0], [0])


class TestPackedAccumulator:
    def test_madd_accumulates_products(self):
        acc = PackedAccumulator()
        a = pack_lanes([100, -100, 2, 3], ET.INT16)
        b = pack_lanes([50, 50, 2, 3], ET.INT16)
        acc.madd_stream([a, a], [b, b])
        assert acc.lanes == [10000, -10000, 8, 18]

    def test_sad_stream_accumulates(self):
        acc = PackedAccumulator()
        a = pack_lanes([10] * 8, ET.UINT8)
        b = pack_lanes([7] * 8, ET.UINT8)
        acc.sad_stream([a, a, a], [b, b, b])
        assert acc.lanes[0] == 3 * 8 * 3

    def test_clear(self):
        acc = PackedAccumulator()
        acc.add_stream([pack_lanes([1, 1, 1, 1], ET.INT16)])
        acc.clear()
        assert acc.lanes == [0, 0, 0, 0]

    def test_read_saturates(self):
        acc = PackedAccumulator()
        acc.lanes = [1 << 40, -(1 << 40), 5, -5]
        out = unpack_lanes(acc.read(ET.INT32), ET.INT32)
        assert out == [(1 << 31) - 1, -(1 << 31)]

    @given(st.lists(i16x4, min_size=1, max_size=16))
    def test_add_then_sub_cancels(self, rows):
        acc = PackedAccumulator()
        words = [pack_lanes(r, ET.INT16) for r in rows]
        acc.add_stream(words, sign=1)
        acc.add_stream(words, sign=-1)
        assert acc.lanes == [0, 0, 0, 0]


class TestPermuteAndExtract:
    @given(i16x4, st.integers(0, 255))
    def test_pshufw_selects_lanes(self, xs, imm):
        a = pack_lanes(xs, ET.INT16)
        out = unpack_lanes(execute_mmx("pshufw", a, imm=imm), ET.INT16)
        for i in range(4):
            assert out[i] == xs[(imm >> (2 * i)) & 3]

    def test_pshufw_identity(self):
        a = pack_lanes([1, 2, 3, 4], ET.INT16)
        assert execute_mmx("pshufw", a, imm=0b11_10_01_00) == a

    @given(st.lists(st.integers(-128, 127), min_size=8, max_size=8))
    def test_pmovmskb_sign_bits(self, xs):
        a = pack_lanes(xs, ET.INT8)
        mask = execute_mmx("pmovmskb", a)
        for i, x in enumerate(xs):
            assert bool(mask & (1 << i)) == (x < 0)

    @given(i16x4, st.integers(0, 3))
    def test_pextrw_reads_lane(self, xs, index):
        from repro.isa.datatypes import to_unsigned

        a = pack_lanes(xs, ET.INT16)
        assert execute_mmx("pextrw", a, imm=index) == to_unsigned(xs[index], 16)

    @given(i16x4, st.integers(0, 65535), st.integers(0, 3))
    def test_pinsrw_writes_one_lane(self, xs, value, index):
        from repro.isa.semantics import pinsrw

        a = pack_lanes(xs, ET.INT16)
        out = unpack_lanes(pinsrw(a, value, index), ET.UINT16)
        for i in range(4):
            if i == index:
                assert out[i] == value
            else:
                assert out[i] == unpack_lanes(a, ET.UINT16)[i]
