"""Tests for the pipeline instrumentation layer."""

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.core.stats import InstrumentedRun, PipelineStats
from repro.memory import PerfectMemory
from repro.workloads import build_workload_traces

SCALE = 1.2e-5


def instrumented(isa="mmx", n_threads=2):
    processor = SMTProcessor(
        SMTConfig(isa=isa, n_threads=n_threads),
        PerfectMemory(),
        build_workload_traces(isa, scale=SCALE),
    )
    run = InstrumentedRun(processor)
    result = run.run()
    return run, result


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def run_result(self):
        return instrumented()

    def test_result_matches_plain_run(self, run_result):
        __, result = run_result
        plain = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=2),
            PerfectMemory(),
            build_workload_traces("mmx", scale=SCALE),
        ).run()
        assert result.cycles == plain.cycles
        assert result.committed_instructions == plain.committed_instructions

    def test_samples_every_cycle(self, run_result):
        run, result = run_result
        # Sampled cycles >= measured cycles (warmup cycles included).
        assert run.stats.cycles_sampled >= result.cycles

    def test_issue_utilization_bounded(self, run_result):
        run, __ = run_result
        for name, width in (("int", 4), ("mem", 4), ("fp", 4), ("simd", 2)):
            util = run.stats.issue_utilization(name, width)
            assert 0.0 <= util <= 1.0

    def test_integer_queue_is_hottest(self, run_result):
        run, __ = run_result
        stats = run.stats
        int_util = stats.issue_utilization("int", 4)
        assert int_util > stats.issue_utilization("fp", 4)
        assert int_util > stats.issue_utilization("simd", 2)

    def test_window_occupancy_within_capacity(self, run_result):
        run, __ = run_result
        assert 0 < run.stats.mean_window_occupancy <= run.stats.window_capacity

    def test_fairness_reasonable_for_round_robin(self, run_result):
        run, __ = run_result
        assert run.stats.fairness_index() > 0.5

    def test_report_renders(self, run_result):
        run, __ = run_result
        text = run.stats.report({"int": 4, "mem": 4, "fp": 4, "simd": 2})
        assert "int" in text and "fairness" in text


class TestPipelineStats:
    def test_empty_stats_safe(self):
        stats = PipelineStats()
        assert stats.issue_utilization("int", 4) == 0.0
        assert stats.mean_window_occupancy == 0.0
        assert stats.fairness_index() == 1.0

    def test_fairness_perfectly_even(self):
        stats = PipelineStats()
        stats.per_thread_committed.update({0: 100, 1: 100, 2: 100})
        assert stats.fairness_index() == pytest.approx(1.0)

    def test_fairness_single_hog(self):
        stats = PipelineStats()
        stats.per_thread_committed.update({0: 300, 1: 1, 2: 1})
        assert stats.fairness_index() < 0.5
