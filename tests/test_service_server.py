"""The sweep service end to end: single-flight dedup, leases, recovery.

Each test runs a real :class:`SweepService` on a unix socket inside
``tmp_path`` and drives it with the synchronous :class:`SweepClient`
from executor threads — the same wire path production uses, minus the
subprocess layer (``scripts/service_smoke.py`` covers that).  Workers
are injected module-level stubs so no simulation runs; the stubs are
pickled by reference into the server's real process pool.
"""

import asyncio
import functools
import multiprocessing
import os
import time

import pytest

from repro.analysis.resilience import ResilienceConfig
from repro.analysis.runner import RunRequest, read_checked_json
from repro.service import (
    ServiceConfig,
    ServiceUnavailable,
    SweepClient,
    SweepService,
)
from repro.service.protocol import request_to_wire
from repro.service.server import EXECUTIONS_FILENAME, STATS_FILENAME
from repro.verify import faultinject
from repro.verify.faultinject import FaultPlan

FAST = ResilienceConfig(backoff_base=0.01, backoff_max=0.05)

REQUESTS = [
    RunRequest(isa="mmx", n_threads=n, scale=1e-5) for n in (1, 2, 4)
]


@pytest.fixture(autouse=True)
def clean_plan():
    faultinject.install(None)
    yield
    faultinject.install(None)


# ----- stub workers (module level: the pool pickles them by reference) -------


def _payload(args):
    request, _trace_dir, attempt, fingerprint = args
    return {
        "elapsed": 0.01,
        "result": {"point": fingerprint, "n": request.n_threads},
        "attempt": attempt,
    }


def _ok_worker(args):
    return _payload(args)


def _slow_worker(args):
    time.sleep(0.4)
    return _payload(args)


def _value_error_worker(args):
    raise ValueError("deterministic model bug")


def _crash_then_ok_worker(args):
    _request, _trace_dir, attempt, _fingerprint = args
    if attempt == 0:
        if multiprocessing.parent_process() is not None:
            os._exit(faultinject.CRASH_EXIT_CODE)
        raise faultinject.SimulatedWorkerCrash("injected crash")
    return _payload(args)


def _hang_then_ok_worker(args):
    _request, _trace_dir, attempt, _fingerprint = args
    if attempt == 0:
        time.sleep(30.0)
    return _payload(args)


# ----- harness ---------------------------------------------------------------


def run_service(tmp_path, scenario, worker=_ok_worker, jobs=2,
                resilience=FAST, timeout=60.0, **overrides):
    """Run ``scenario(service, config)`` against a live service."""

    async def main():
        config = ServiceConfig(
            cache_dir=str(tmp_path / "cache"),
            socket_path=str(tmp_path / "svc.sock"),
            jobs=jobs,
            resilience=resilience,
            lease_poll=0.05,
            **overrides,
        )
        service = SweepService(config, worker=worker)
        await service.start()
        try:
            return await asyncio.wait_for(
                scenario(service, config), timeout=timeout
            )
        finally:
            await service.shutdown()

    return asyncio.run(main())


async def call(fn, *args, **kwargs):
    """Run a blocking client call off the event loop thread."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, functools.partial(fn, *args, **kwargs)
    )


async def wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"{message} never held"
        await asyncio.sleep(0.05)


def log_counts(cache_dir) -> dict:
    import json

    counts = {}
    path = os.path.join(str(cache_dir), EXECUTIONS_FILENAME)
    if os.path.exists(path):
        with open(path) as handle:
            for line in handle:
                fingerprint = json.loads(line)["fingerprint"]
                counts[fingerprint] = counts.get(fingerprint, 0) + 1
    return counts


# ----- behaviour -------------------------------------------------------------


class TestExecution:
    def test_sweep_executes_stores_and_logs_once(self, tmp_path):
        async def scenario(service, config):
            client = SweepClient(config.socket_path, name="t")
            try:
                outcome = await call(client.sweep, REQUESTS)
            finally:
                await call(client.close)
            assert outcome.ok
            assert outcome.sources == {"executed": 3}
            assert service.stats.executed == 3
            assert service.stats.scheduled == 3
            # Execution provenance: one log line per point, and the
            # result landed in the shared store under its fingerprint.
            assert set(log_counts(config.cache_dir)) == set(
                outcome.fingerprints
            )
            assert all(
                n == 1 for n in log_counts(config.cache_dir).values()
            )
            for fingerprint in outcome.fingerprints:
                payload, status = read_checked_json(
                    os.path.join(config.cache_dir, f"{fingerprint}.json")
                )
                assert status == "ok"
                assert payload["result"]["point"] == fingerprint

        run_service(tmp_path, scenario)

    def test_duplicate_points_in_one_sweep_get_one_verdict(self, tmp_path):
        # SweepClient collapses duplicates before submitting, so drive
        # raw frames to prove the *server* dedups within one sweep too.
        async def scenario(service, config):
            raw = SweepClient(config.socket_path, name="dup")
            frames = []
            try:
                await call(raw._connect)
                wire = request_to_wire(REQUESTS[0])
                await call(raw._send, {
                    "op": "submit", "sweep": "dups",
                    "requests": [dict(wire), dict(wire), dict(wire)],
                })
                while True:
                    frame = await call(raw._read)
                    frames.append(frame)
                    if frame["op"] == "sweep-done":
                        break
            finally:
                await call(raw._close)
            accepted = next(f for f in frames if f["op"] == "accepted")
            assert accepted["points"] == 3
            assert accepted["scheduled"] == 1
            assert len(set(accepted["fingerprints"])) == 1
            assert len([f for f in frames if f["op"] == "result"]) == 1
            assert service.stats.submissions == 3
            assert service.stats.scheduled == 1
            assert service.stats.executed == 1

        run_service(tmp_path, scenario)

    def test_two_clients_same_sweep_single_flight(self, tmp_path):
        async def scenario(service, config):
            first = SweepClient(config.socket_path, name="a")
            second = SweepClient(config.socket_path, name="b")
            try:
                race = asyncio.ensure_future(call(first.sweep, REQUESTS))
                # Let the first submission land, then pile on while its
                # jobs are still in flight (the worker sleeps 0.4 s).
                await wait_until(
                    lambda: service.stats.scheduled == 3,
                    message="first submission scheduled",
                )
                chaser = await call(second.sweep, REQUESTS)
                leader = await race
            finally:
                await call(first.close)
                await call(second.close)
            assert leader.ok and chaser.ok
            # The headline guarantee: both sweeps were served, but each
            # fingerprint was simulated exactly once.
            assert service.stats.executed == 3
            assert all(n == 1 for n in log_counts(config.cache_dir).values())
            dedup = (
                service.stats.joined_inflight
                + service.stats.memo_hits
                + service.stats.warm_hits
            )
            assert dedup >= 3

        run_service(tmp_path, scenario, worker=_slow_worker)


class TestFailureHandling:
    def test_permanent_failure_reports_the_failure_chain(self, tmp_path):
        async def scenario(service, config):
            client = SweepClient(config.socket_path, name="t")
            try:
                outcome = await call(client.sweep, REQUESTS[:1])
            finally:
                await call(client.close)
            assert not outcome.ok
            assert not outcome.results
            (frame,) = outcome.failed.values()
            assert frame["failures"][-1]["error"] == "ValueError"
            assert "deterministic model bug" in frame["failures"][-1]["message"]
            assert service.stats.failed_points == 1
            assert service.stats.retries == 0  # non-transient: no retry
            assert log_counts(config.cache_dir) == {}

        run_service(tmp_path, scenario, worker=_value_error_worker)

    def test_worker_crash_breaks_pool_and_retries_to_success(self, tmp_path):
        async def scenario(service, config):
            client = SweepClient(config.socket_path, name="t")
            try:
                outcome = await call(client.sweep, REQUESTS)
            finally:
                await call(client.close)
            assert outcome.ok
            assert service.stats.pool_breaks >= 1
            assert service.stats.retries >= 1
            assert service.stats.failed_points == 0
            assert all(n == 1 for n in log_counts(config.cache_dir).values())

        run_service(
            tmp_path, scenario, worker=_crash_then_ok_worker,
            resilience=ResilienceConfig(
                backoff_base=0.01, backoff_max=0.05, pool_break_limit=10
            ),
        )

    def test_expired_lease_kills_the_hung_worker_and_resubmits(self, tmp_path):
        async def scenario(service, config):
            client = SweepClient(config.socket_path, name="t")
            try:
                outcome = await call(client.sweep, REQUESTS[:1])
            finally:
                await call(client.close)
            assert outcome.ok
            assert service.stats.lease_expiries >= 1
            assert service.stats.retries >= 1
            # The kill was deliberate — not booked as a spontaneous break.
            assert service.stats.pool_breaks == 0
            (frame,) = outcome.results.values()
            assert frame["source"] == "executed"

        run_service(
            tmp_path, scenario, worker=_hang_then_ok_worker, jobs=1,
            resilience=ResilienceConfig(
                timeout=0.5, backoff_base=0.01, backoff_max=0.05
            ),
        )


class TestClientFailover:
    def test_injected_disconnect_is_redelivered_on_reconnect(self, tmp_path):
        faultinject.install(FaultPlan(disconnect_fraction=1.0))

        async def scenario(service, config):
            client = SweepClient(
                config.socket_path, name="t", retry_delay=0.05
            )
            try:
                outcome = await call(client.sweep, REQUESTS[:2])
            finally:
                await call(client.close)
            # Every fingerprint's *first* delivery was dropped on the
            # floor; the client reconnected, resubmitted, and the
            # redelivery (a memo/warm hit) sailed through.
            assert outcome.ok
            assert outcome.reconnects >= 1
            assert service.stats.injected_disconnects >= 1
            assert service.stats.executed == 2
            assert all(n == 1 for n in log_counts(config.cache_dir).values())

        run_service(tmp_path, scenario)

    def test_orphaned_submission_runs_to_completion(self, tmp_path):
        async def scenario(service, config):
            rude = SweepClient(config.socket_path, name="rude")
            await call(rude._connect)
            await call(rude._send, {
                "op": "submit",
                "sweep": "orphaned",
                "requests": [request_to_wire(r) for r in REQUESTS],
            })
            await wait_until(
                lambda: service.stats.scheduled == 3,
                message="orphan submission scheduled",
            )
            await call(rude._close)  # vanish mid-sweep, no goodbye
            await wait_until(
                lambda: service.stats.executed == 3,
                message="orphaned jobs finished",
            )
            assert service.stats.client_disconnects == 1
            assert service.stats.orphaned_jobs >= 1

            # A reconnecting client gets every point warm, no recompute.
            back = SweepClient(config.socket_path, name="back")
            try:
                outcome = await call(back.sweep, REQUESTS)
            finally:
                await call(back.close)
            assert outcome.ok
            assert outcome.sources.get("executed", 0) == 0
            assert service.stats.executed == 3

        run_service(tmp_path, scenario, worker=_slow_worker)


class TestLifecycle:
    def test_restart_re_serves_finished_points_without_recompute(
        self, tmp_path
    ):
        async def first_life(service, config):
            client = SweepClient(config.socket_path, name="t")
            try:
                outcome = await call(client.sweep, REQUESTS)
            finally:
                await call(client.close)
            assert outcome.ok
            assert service.stats.executed == 3

        run_service(tmp_path, first_life)

        # Second life on the same store, with a worker that would blow
        # up if anything were recomputed: all three points must come
        # back as warm cache hits rebuilt from disk.
        async def second_life(service, config):
            assert service.stats.recovered_points == 3
            client = SweepClient(config.socket_path, name="t")
            try:
                outcome = await call(client.sweep, REQUESTS)
            finally:
                await call(client.close)
            assert outcome.ok
            assert outcome.sources == {"cache": 3}
            assert service.stats.executed == 0
            assert service.stats.warm_hits == 3

        run_service(tmp_path, second_life, worker=_value_error_worker)

    def test_drain_finishes_in_flight_rejects_new_and_flushes_stats(
        self, tmp_path
    ):
        async def scenario(service, config):
            client = SweepClient(
                config.socket_path, name="t",
                connect_timeout=1.0, retry_delay=0.05,
            )
            try:
                outcome = await call(client.sweep, REQUESTS)
                assert outcome.ok
                await call(client.status)  # hold an open connection
                await service.drain("test")
                with pytest.raises(ServiceUnavailable):
                    await call(
                        client.sweep,
                        [RunRequest(isa="mom", n_threads=2, scale=1e-5)],
                    )
            finally:
                await call(client.close)
            payload, status = read_checked_json(
                os.path.join(config.cache_dir, STATS_FILENAME)
            )
            assert status == "ok"
            assert payload["drained"] is True
            assert payload["reason"] == "test"
            assert payload["stats"]["executed"] == 3
            assert payload["executions"] == log_counts(config.cache_dir)

        run_service(tmp_path, scenario)
