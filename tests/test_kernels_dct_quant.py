"""Tests for DCT, quantization and colour-conversion kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.color import (
    downsample_420,
    rgb_to_ycbcr,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.kernels.dct import (
    BLOCK,
    blocks_of,
    dct2d,
    fdct_fixed,
    idct2d,
    idct_fixed,
)
from repro.kernels.quant import (
    JPEG_LUMA_QTABLE,
    dequantize,
    quantize,
    quantize_packed,
    scale_qtable,
)

rng = np.random.default_rng(42)

block8 = st.integers(0, 2**32 - 1).map(
    lambda seed: np.random.default_rng(seed).integers(-128, 128, (8, 8))
)


class TestFloatDct:
    def test_dc_of_constant_block(self):
        block = np.full((8, 8), 100.0)
        coeffs = dct2d(block)
        assert coeffs[0, 0] == pytest.approx(800.0)
        assert np.abs(coeffs).sum() == pytest.approx(800.0)

    def test_roundtrip(self):
        block = rng.integers(-128, 128, (8, 8)).astype(float)
        assert np.allclose(idct2d(dct2d(block)), block, atol=1e-9)

    def test_parseval_energy_preserved(self):
        block = rng.integers(-128, 128, (8, 8)).astype(float)
        coeffs = dct2d(block)
        assert np.sum(block**2) == pytest.approx(np.sum(coeffs**2))

    def test_linear(self):
        a = rng.integers(-128, 128, (8, 8)).astype(float)
        b = rng.integers(-128, 128, (8, 8)).astype(float)
        assert np.allclose(dct2d(a + b), dct2d(a) + dct2d(b))

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            dct2d(np.zeros((4, 4)))


class TestFixedDct:
    @given(block8)
    @settings(max_examples=30)
    def test_matches_float_dct(self, block):
        fixed = fdct_fixed(block)
        ref = dct2d(block.astype(float))
        assert np.abs(fixed - ref).max() <= 2.0

    @given(block8)
    @settings(max_examples=30)
    def test_roundtrip_within_rounding(self, block):
        recon = idct_fixed(fdct_fixed(block))
        assert np.abs(recon - block).max() <= 2

    def test_blocks_of_tiles_image(self):
        image = rng.integers(0, 256, (16, 24))
        tiles = list(blocks_of(image))
        assert len(tiles) == (16 // BLOCK) * (24 // BLOCK)
        y, x, tile = tiles[0]
        assert (y, x) == (0, 0)
        assert tile.shape == (BLOCK, BLOCK)

    def test_blocks_of_rejects_ragged(self):
        with pytest.raises(ValueError):
            list(blocks_of(np.zeros((10, 16))))


class TestQuantization:
    def test_quantize_dequantize_bounded_error(self):
        coeffs = rng.integers(-1000, 1000, (8, 8))
        levels = quantize(coeffs, JPEG_LUMA_QTABLE)
        recon = dequantize(levels, JPEG_LUMA_QTABLE)
        assert np.abs(recon - coeffs).max() <= JPEG_LUMA_QTABLE.max() // 2 + 1

    def test_quantize_zero_is_zero(self):
        assert quantize(np.zeros((8, 8), dtype=np.int64), JPEG_LUMA_QTABLE).sum() == 0

    def test_quantize_sign_symmetry(self):
        coeffs = rng.integers(-1000, 1000, (8, 8))
        assert np.array_equal(
            quantize(coeffs, JPEG_LUMA_QTABLE),
            -quantize(-coeffs, JPEG_LUMA_QTABLE),
        )

    def test_scale_qtable_quality_extremes(self):
        q1 = scale_qtable(JPEG_LUMA_QTABLE, 1)
        q100 = scale_qtable(JPEG_LUMA_QTABLE, 100)
        assert (q1 >= JPEG_LUMA_QTABLE).all()
        assert (q100 == 1).all()

    def test_scale_qtable_rejects_bad_quality(self):
        with pytest.raises(ValueError):
            scale_qtable(JPEG_LUMA_QTABLE, 0)

    def test_packed_quantizer_close_to_reference(self):
        coeffs = rng.integers(-2000, 2000, (8, 8))
        ref = quantize(coeffs, JPEG_LUMA_QTABLE)
        packed = quantize_packed(coeffs, JPEG_LUMA_QTABLE)
        # Truncating fixed-point quantizer: off by at most one level.
        assert np.abs(packed - ref).max() <= 1


class TestColor:
    def test_roundtrip_close(self):
        image = rng.integers(0, 256, (16, 16, 3)).astype(np.uint8)
        back = ycbcr_to_rgb(rgb_to_ycbcr(image))
        assert np.abs(back.astype(int) - image.astype(int)).max() <= 3

    def test_grey_has_neutral_chroma(self):
        grey = np.full((4, 4, 3), 128, dtype=np.uint8)
        ycc = rgb_to_ycbcr(grey)
        assert np.all(ycc[..., 0] == 128)
        assert np.all(np.abs(ycc[..., 1].astype(int) - 128) <= 1)
        assert np.all(np.abs(ycc[..., 2].astype(int) - 128) <= 1)

    def test_luma_ordering(self):
        dark = rgb_to_ycbcr(np.full((1, 1, 3), 10, dtype=np.uint8))
        bright = rgb_to_ycbcr(np.full((1, 1, 3), 240, dtype=np.uint8))
        assert bright[0, 0, 0] > dark[0, 0, 0]

    def test_downsample_upsample_shapes(self):
        plane = rng.integers(0, 256, (16, 24)).astype(np.uint8)
        down = downsample_420(plane)
        assert down.shape == (8, 12)
        assert upsample_420(down).shape == (16, 24)

    def test_downsample_constant_plane(self):
        plane = np.full((8, 8), 77, dtype=np.uint8)
        assert np.all(downsample_420(plane) == 77)

    def test_downsample_rejects_odd(self):
        with pytest.raises(ValueError):
            downsample_420(np.zeros((7, 8)))
