"""The fault-tolerance layer: retries, timeouts, pool breaks, crash-safe cache."""

import glob
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.runner as runner_module
from repro.analysis.resilience import (
    ResilienceConfig,
    ResilientExecutor,
    SweepFailure,
    backoff_delay,
    is_transient,
)
from repro.analysis.runner import (
    CacheIntegrityWarning,
    Runner,
    RunRequest,
    read_checked_json,
    verify_cache,
    write_checked_json,
)
from repro.verify import faultinject
from repro.verify.faultinject import FaultPlan, SimulatedWorkerCrash
from repro.verify.sanitizer import InvariantViolation

SCALE = 1.2e-5

FAST = ResilienceConfig(backoff_base=0.01, backoff_max=0.05)

_SRC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def tiny(**overrides) -> RunRequest:
    base = dict(isa="mmx", n_threads=2, scale=SCALE)
    base.update(overrides)
    return RunRequest(**base)


def fast(**overrides) -> ResilienceConfig:
    base = dict(backoff_base=0.01, backoff_max=0.05)
    base.update(overrides)
    return ResilienceConfig(**base)


@pytest.fixture(autouse=True)
def clean_plan():
    faultinject.install(None)
    yield
    faultinject.install(None)


# ----- stub workers (module level: the pool pickles them by reference) -------


def _payload(request, attempt):
    return {"elapsed": 0.0, "result": {"value": str(request)}, "attempt": attempt}


def _ok_worker(args):
    request, _trace_dir, attempt, _fingerprint = args
    return _payload(request, attempt)


def _flaky_worker(args):
    """OSError on the first attempt, success afterwards."""
    request, _trace_dir, attempt, _fingerprint = args
    if attempt == 0:
        raise OSError("transient I/O hiccup")
    return _payload(request, attempt)


def _value_error_worker(args):
    raise ValueError("deterministic model bug")


def _invariant_worker(args):
    raise InvariantViolation(
        "rob", "SAN-RETIRE-ORDER", "retired out of order", {"thread": 1, "seq": 7}
    )


def _simulated_crash_worker(args):
    """Dies for real in a worker process, raises in-process otherwise."""
    request, _trace_dir, attempt, _fingerprint = args
    if multiprocessing.parent_process() is not None:
        os._exit(faultinject.CRASH_EXIT_CODE)
    raise SimulatedWorkerCrash(f"injected crash of {request}")


def _crash_once_worker(args):
    request, _trace_dir, attempt, _fingerprint = args
    if attempt == 0:
        if multiprocessing.parent_process() is not None:
            os._exit(faultinject.CRASH_EXIT_CODE)
        raise SimulatedWorkerCrash(f"injected crash of {request}")
    return _payload(request, attempt)


def _hang_once_worker(args):
    request, _trace_dir, attempt, _fingerprint = args
    if attempt == 0:
        time.sleep(60.0)
    return _payload(request, attempt)


def _bad_prefix_worker(args):
    request, _trace_dir, attempt, _fingerprint = args
    if str(request).startswith("bad"):
        raise ValueError(f"{request} is permanently broken")
    return _payload(request, attempt)


def run_executor(worker, requests, config, jobs=1):
    collected = {}
    executor = ResilientExecutor(config, jobs, worker, fingerprint_of=str)
    outcomes = executor.execute(
        list(requests), None, lambda request, payload: collected.update({request: payload})
    )
    return executor, {o.request: o for o in outcomes}, collected


# ----- policy primitives ------------------------------------------------------


class TestBackoff:
    def test_deterministic_and_order_free(self):
        config = ResilienceConfig(backoff_seed=5)
        delays = [backoff_delay(config, f"fp{i}", a) for i in range(5) for a in (1, 2)]
        again = [backoff_delay(config, f"fp{i}", a) for i in range(5) for a in (1, 2)]
        assert delays == again

    def test_jitter_within_half_to_three_halves_of_base(self):
        config = ResilienceConfig(backoff_base=0.2, backoff_factor=2.0)
        for attempt, base in ((1, 0.2), (2, 0.4), (3, 0.8)):
            delay = backoff_delay(config, "fp", attempt)
            assert 0.5 * base <= delay < 1.5 * base

    def test_capped_at_backoff_max(self):
        config = ResilienceConfig(backoff_max=1.0)
        assert backoff_delay(config, "fp", 40) < 1.5

    def test_seed_and_fingerprint_vary_the_jitter(self):
        a = ResilienceConfig(backoff_seed=1)
        b = ResilienceConfig(backoff_seed=2)
        assert backoff_delay(a, "fp", 1) != backoff_delay(b, "fp", 1)
        assert backoff_delay(a, "fp1", 1) != backoff_delay(a, "fp2", 1)


class TestBackoffProperties:
    """Property coverage: the delay law the whole repo relies on.

    Both the runner and the sweep service resubmit with
    :func:`backoff_delay`; deterministic replay of a chaos run needs
    the delay to be a pure function of (seed, fingerprint, attempt)
    with a monotone, capped envelope.
    """

    @given(
        seed=st.integers(0, 2**32 - 1),
        fingerprint=st.text(min_size=1, max_size=64),
        attempt=st.integers(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_deterministic_and_monotone_bounded(
        self, seed, fingerprint, attempt
    ):
        config = ResilienceConfig(backoff_seed=seed)
        delay = backoff_delay(config, fingerprint, attempt)
        assert delay == backoff_delay(config, fingerprint, attempt)
        envelope = min(
            config.backoff_max,
            config.backoff_base * config.backoff_factor ** (attempt - 1),
        )
        assert 0.5 * envelope <= delay < 1.5 * envelope
        assert delay < 1.5 * config.backoff_max
        if attempt > 1:
            previous = min(
                config.backoff_max,
                config.backoff_base
                * config.backoff_factor ** (attempt - 2),
            )
            assert previous <= envelope  # the envelope never shrinks

    @given(
        triples=st.lists(
            st.tuples(
                st.integers(0, 2**16),
                st.text(
                    alphabet="0123456789abcdef", min_size=1, max_size=16
                ),
                st.integers(1, 16),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=5, deadline=None)
    def test_stable_across_processes(self, triples):
        # A service restart (or a client on another host) must compute
        # the *same* delays: bit-exact, not just statistically similar.
        import json
        import subprocess
        import sys

        local = [
            backoff_delay(
                ResilienceConfig(backoff_seed=seed), fingerprint, attempt
            ).hex()
            for seed, fingerprint, attempt in triples
        ]
        program = (
            "import json, sys\n"
            "from repro.analysis.resilience import ("
            "ResilienceConfig, backoff_delay)\n"
            "triples = json.loads(sys.stdin.read())\n"
            "print(json.dumps([backoff_delay("
            "ResilienceConfig(backoff_seed=s), fp, a).hex() "
            "for s, fp, a in triples]))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", program],
            input=json.dumps(triples),
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": _SRC_PATH},
            check=True,
        )
        assert json.loads(proc.stdout) == local


class TestTransience:
    def test_transient_kinds(self):
        assert is_transient(OSError("disk"))
        assert is_transient(SimulatedWorkerCrash("boom"))
        assert is_transient(BrokenProcessPool("pool"))

    def test_deterministic_kinds_are_not_retried(self):
        assert not is_transient(ValueError("bug"))
        assert not is_transient(KeyError("bug"))

    def test_invariant_violations_never_retry(self):
        # InvariantViolation is an AssertionError, but even if it were an
        # OSError subclass the explicit carve-out must win: a determinis-
        # tic model bug cannot be fixed by rerunning the simulation.
        assert not is_transient(InvariantViolation("rob", "C", "m"))


# ----- serial executor --------------------------------------------------------


class TestSerialExecutor:
    def test_transient_failures_retry_to_success(self):
        executor, outcomes, collected = run_executor(
            _flaky_worker, ["a", "b"], fast()
        )
        assert {o.status for o in outcomes.values()} == {"ok"}
        assert all(o.attempts == 2 for o in outcomes.values())
        assert executor.retries == 2
        assert executor.failed == 0
        assert set(collected) == {"a", "b"}
        record = outcomes["a"].failures[0]
        assert (record.kind, record.error, record.attempt) == ("error", "OSError", 0)

    def test_non_transient_failure_is_permanent_on_first_attempt(self):
        executor, outcomes, collected = run_executor(
            _value_error_worker, ["a"], fast()
        )
        assert outcomes["a"].status == "failed"
        assert outcomes["a"].attempts == 1
        assert executor.retries == 0
        assert executor.failed == 1
        assert collected == {}

    def test_attempts_exhausted_becomes_permanent(self):
        executor, outcomes, _ = run_executor(
            _simulated_crash_worker, ["a"], fast(max_attempts=3)
        )
        assert outcomes["a"].status == "failed"
        assert outcomes["a"].attempts == 3
        assert executor.retries == 2
        assert [f.kind for f in outcomes["a"].failures] == ["crash"] * 3

    def test_salvage_mode_finishes_everything_completable(self):
        executor, outcomes, collected = run_executor(
            _bad_prefix_worker, ["bad-0", "good-0", "good-1"], fast()
        )
        assert outcomes["bad-0"].status == "failed"
        assert outcomes["good-0"].status == "ok"
        assert outcomes["good-1"].status == "ok"
        assert not executor.aborted
        assert set(collected) == {"good-0", "good-1"}

    def test_fail_fast_aborts_the_remainder(self):
        executor, outcomes, collected = run_executor(
            _bad_prefix_worker, ["bad-0", "good-0", "good-1"], fast(fail_fast=True)
        )
        assert outcomes["bad-0"].status == "failed"
        assert outcomes["good-0"].status == "aborted"
        assert outcomes["good-1"].status == "aborted"
        assert executor.aborted
        assert collected == {}

    def test_max_failures_bounds_the_damage(self):
        executor, outcomes, _ = run_executor(
            _bad_prefix_worker,
            ["bad-0", "bad-1", "good-0", "bad-2"],
            fast(max_failures=2),
        )
        statuses = [outcomes[r].status for r in ("bad-0", "bad-1", "good-0", "bad-2")]
        assert statuses == ["failed", "failed", "aborted", "aborted"]
        assert executor.failed == 2
        assert executor.aborted


# ----- pooled executor --------------------------------------------------------


class TestPooledExecutor:
    def test_worker_crash_breaks_pool_then_recovers(self):
        executor, outcomes, collected = run_executor(
            _crash_once_worker, ["a", "b"], fast(pool_break_limit=10), jobs=2
        )
        assert {o.status for o in outcomes.values()} == {"ok"}
        assert set(collected) == {"a", "b"}
        assert executor.pool_breaks >= 1
        assert executor.degraded == 0
        # Every task that rode a broken pool was charged a "pool" failure.
        kinds = {f.kind for o in outcomes.values() for f in o.failures}
        assert kinds == {"pool"}

    def test_hung_run_is_killed_charged_and_retried(self):
        executor, outcomes, collected = run_executor(
            _hang_once_worker, ["a", "b"], fast(timeout=1.5), jobs=2
        )
        assert {o.status for o in outcomes.values()} == {"ok"}
        assert set(collected) == {"a", "b"}
        assert executor.timeouts >= 1
        timed_out = [
            f for o in outcomes.values() for f in o.failures if f.kind == "timeout"
        ]
        assert timed_out
        assert all(f.elapsed >= 1.5 for f in timed_out)

    def test_persistent_breakage_degrades_to_serial(self):
        executor, outcomes, _ = run_executor(
            _simulated_crash_worker,
            ["a", "b"],
            fast(pool_break_limit=2, max_attempts=4),
            jobs=2,
        )
        assert executor.degraded == 1
        assert executor.pool_breaks == 2
        assert {o.status for o in outcomes.values()} == {"failed"}
        # History shows both phases: pooled breaks, then in-process crashes.
        kinds = [f.kind for f in outcomes["a"].failures]
        assert "pool" in kinds and "crash" in kinds
        assert outcomes["a"].attempts == 4

    def test_invariant_violation_crosses_the_pool_intact(self):
        """Satellite: a violation in a worker must arrive structured."""
        executor, outcomes, collected = run_executor(
            _invariant_worker, ["a", "b"], fast(), jobs=2
        )
        assert {o.status for o in outcomes.values()} == {"failed"}
        assert collected == {}
        assert executor.retries == 0  # deterministic bug: no retry
        for outcome in outcomes.values():
            assert outcome.attempts == 1
            record = outcome.failures[0]
            assert record.error == "InvariantViolation"
            assert "SAN-RETIRE-ORDER" in record.message
            assert "retired out of order" in record.message


class TestInvariantViolationPickling:
    def test_round_trip_preserves_structured_payload(self):
        violation = InvariantViolation(
            "mshr", "SAN-MSHR-LEAK", "5 fills pending at drain", {"pending": 5}
        )
        clone = pickle.loads(pickle.dumps(violation))
        assert isinstance(clone, InvariantViolation)
        assert clone.component == "mshr"
        assert clone.code == "SAN-MSHR-LEAK"
        assert clone.message == "5 fills pending at drain"
        assert clone.details == {"pending": 5}
        assert str(clone) == str(violation)

    def test_surfaces_as_itself_through_a_process_pool(self):
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_invariant_worker, ("a", None, 0, "fp"))
            with pytest.raises(InvariantViolation) as info:
                future.result()
        assert info.value.code == "SAN-RETIRE-ORDER"
        assert info.value.details == {"thread": 1, "seq": 7}


# ----- crash-safe cache format ------------------------------------------------


class TestCheckedJson:
    def test_round_trip_ok(self, tmp_path):
        path = str(tmp_path / "entry.json")
        write_checked_json(path, {"a": [1, 2.5, "x"]})
        payload, status = read_checked_json(path)
        assert status == "ok"
        assert payload == {"a": [1, 2.5, "x"]}

    def test_missing(self, tmp_path):
        assert read_checked_json(str(tmp_path / "nope.json")) == (None, "missing")

    def test_unparseable_is_corrupt(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{torn wr")
        assert read_checked_json(str(path)) == (None, "corrupt")

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        path = str(tmp_path / "entry.json")
        write_checked_json(path, {"value": 1})
        tampered = open(path).read().replace('"value": 1', '"value": 2')
        with open(path, "w") as handle:
            handle.write(tampered)
        assert read_checked_json(path) == (None, "corrupt")

    def test_pre_envelope_format_is_legacy_not_corrupt(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text('{"result_format": 1, "result": {}}')
        assert read_checked_json(str(path)) == (None, "legacy")

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        path = str(tmp_path / "entry.json")
        write_checked_json(path, {"value": 1})
        write_checked_json(path, {"value": 2})
        assert os.listdir(tmp_path) == ["entry.json"]

    def test_verify_cache_classifies(self, tmp_path):
        write_checked_json(str(tmp_path / "good.json"), {"v": 1})
        (tmp_path / "torn.json").write_text("{")
        (tmp_path / "old.json").write_text('{"v": 1}')
        (tmp_path / "dead.json.corrupt").write_text("x")
        scan = verify_cache(str(tmp_path))
        assert scan["ok"] == 1
        assert [os.path.basename(p) for p in scan["corrupt"]] == ["torn.json"]
        assert [os.path.basename(p) for p in scan["legacy"]] == ["old.json"]
        assert [os.path.basename(p) for p in scan["quarantined"]] == [
            "dead.json.corrupt"
        ]


# ----- the runner under injected faults ---------------------------------------


class TestRunnerResilience:
    def test_injected_crash_retries_to_a_bit_identical_result(self, tmp_path):
        reference = Runner().run(tiny())

        faultinject.install(FaultPlan(crash_fraction=1.0))
        runner = Runner(cache_dir=str(tmp_path), resilience=FAST)
        result = runner.run(tiny())
        assert result == reference
        assert runner.stats.retries == 1
        assert runner.stats.failed_points == 0
        outcome = runner.outcomes[tiny()]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.failures[0].kind == "crash"

    def test_injected_corruption_is_quarantined_and_recomputed(self, tmp_path):
        faultinject.install(FaultPlan(corrupt_fraction=1.0))
        chaos = Runner(cache_dir=str(tmp_path), resilience=FAST)
        reference = chaos.run(tiny())
        scan = verify_cache(str(tmp_path))
        assert len(scan["corrupt"]) == 1  # the entry really was corrupted

        faultinject.install(None)
        warm = Runner(cache_dir=str(tmp_path), resilience=FAST)
        with pytest.warns(CacheIntegrityWarning, match="quarantined"):
            result = warm.run(tiny())
        assert result == reference
        assert warm.stats.corrupt_quarantined == 1
        assert warm.stats.simulated == 1
        assert warm.stats.disk_hits == 0
        assert glob.glob(str(tmp_path / "*.json.corrupt"))
        scan = verify_cache(str(tmp_path))
        assert not scan["corrupt"]
        assert scan["ok"] >= 1

    def test_sweep_failure_salvages_and_caches_the_good_points(
        self, tmp_path, monkeypatch
    ):
        real = runner_module._pool_execute

        def selective(args):
            if args[0].n_threads == 4:
                raise ValueError("synthetic permanent failure")
            return real(args)

        monkeypatch.setattr(runner_module, "_pool_execute", selective)
        good, bad = tiny(), tiny(n_threads=4)
        runner = Runner(cache_dir=str(tmp_path), resilience=FAST)
        with pytest.raises(SweepFailure) as info:
            runner.run_batch([good, bad])
        assert [o.request for o in info.value.failed] == [bad]
        assert not info.value.aborted
        assert "1 of 2 simulation points failed permanently" in str(info.value)
        assert "synthetic permanent failure" in info.value.summary()
        assert runner.stats.failed_points == 1
        assert runner.outcomes[bad].status == "failed"
        assert runner.outcomes[good].status == "ok"

        # The good point was salvaged: a rerun serves it from disk.
        warm = Runner(cache_dir=str(tmp_path))
        warm.run(good)
        assert warm.stats.disk_hits == 1
        assert warm.stats.simulated == 0

    def test_hang_on_the_final_attempt_raises_instead_of_deadlocking(
        self, tmp_path
    ):
        # The nastiest timing edge: the injected hang lands on the last
        # attempt of the budget, so there is no retry left to save the
        # point.  The timeout kill must still fire and the sweep must
        # end in SweepFailure — not sleep out the 30 s hang, and not
        # wait forever on a worker that will never report.
        faultinject.install(FaultPlan(hang_fraction=1.0, hang_seconds=30.0))
        # Two points + jobs=2 force pooled execution: only a pool can
        # preempt a hang (a single-point batch runs serially, where a
        # hang deliberately sleeps to completion).
        runner = Runner(
            cache_dir=str(tmp_path), jobs=2,
            resilience=fast(timeout=0.5, max_attempts=1),
        )
        started = time.monotonic()
        with pytest.raises(SweepFailure) as info:
            runner.run_batch([tiny(), tiny(n_threads=4)])
        assert time.monotonic() - started < 15.0, "hang was slept out"
        assert len(info.value.failed) == 2
        for outcome in info.value.failed:
            assert outcome.failures[-1].kind == "timeout"
        assert runner.stats.failed_points == 2
        assert runner.stats.timeouts == 2
        assert runner.stats.retries == 0  # the budget really was 1

    def test_faults_keyed_to_later_attempts_leave_attempt_zero_clean(
        self, tmp_path
    ):
        faultinject.install(FaultPlan(crash_fraction=1.0, fault_attempt=1))
        runner = Runner(cache_dir=str(tmp_path), resilience=FAST)
        runner.run(tiny())
        assert runner.stats.retries == 0
        assert runner.outcomes[tiny()].attempts == 1


class TestWindowShardResilience:
    """Chaos against intra-run window shards: kills and hangs of
    individual shards must never move the merged result by a bit."""

    #: Sampling small enough that the 1.2e-5 workload chunks (K > 1).
    SAMPLING = (1000, 200, 50)

    def sampled(self) -> RunRequest:
        return tiny(sampling=self.SAMPLING)

    def test_request_actually_chunks(self):
        from repro.analysis.runner import workload_traces
        from repro.core.smt import sampled_chunk_count

        request = self.sampled()
        traces = workload_traces(request.isa, request.scale)
        assert (
            sampled_chunk_count(
                request.sampling, traces, request.completions_target
            )
            > 1
        ), "chaos coverage needs a genuinely multi-shard schedule"

    def test_crashed_shards_retry_to_a_bit_identical_merge(self, tmp_path):
        reference = Runner().run(self.sampled())

        # Every shard's attempt 0 dies (os._exit in the pool worker);
        # the shard executor must retry each one and merge the reruns
        # into exactly the serial result.
        faultinject.install(FaultPlan(crash_fraction=1.0))
        runner = Runner(
            cache_dir=str(tmp_path), resilience=FAST, window_jobs=2
        )
        result = runner.run(self.sampled())
        assert result == reference
        assert runner.stats.window_shards > 1
        assert runner.window_shard_events[0]["chunks"] > 1

    def test_hung_shards_converge_bit_identically(self, tmp_path):
        reference = Runner().run(self.sampled())

        # Every shard's attempt 0 stalls past the 1-second deadline;
        # pooled shards are killed and retried, degraded-serial ones
        # just sit out the 3-second sleep — either way the merged
        # result must be exactly the serial one.
        faultinject.install(
            FaultPlan(hang_fraction=1.0, hang_seconds=3.0)
        )
        runner = Runner(
            cache_dir=str(tmp_path),
            resilience=fast(timeout=1.0),
            window_jobs=2,
        )
        result = runner.run(self.sampled())
        assert result == reference
        assert runner.stats.window_shards > 1

    def test_shard_log_isolated_per_batch(self, tmp_path):
        # A runner's shard provenance covers its own batches only.
        first = Runner(cache_dir=str(tmp_path), window_jobs=2)
        first.run(self.sampled())
        events = list(first.window_shard_events)
        assert len(events) == 1
        again = Runner(window_jobs=2)
        again.run(self.sampled())
        assert len(first.window_shard_events) == len(events)
