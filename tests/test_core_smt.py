"""Integration tests for the SMT processor pipeline."""

import pytest

from repro.core import FetchPolicy, SMTConfig, SMTProcessor
from repro.memory import ConventionalHierarchy, DecoupledHierarchy, PerfectMemory
from repro.tracegen import build_program_trace
from repro.tracegen.builder import TraceBuilder
from repro.tracegen.program import Trace
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.workloads import build_workload_traces

SCALE = 1.2e-5


def tiny_trace(isa="mmx", kind="int_chain", n=200, seed=1) -> Trace:
    """Hand-built micro-traces with known timing properties."""
    builder = TraceBuilder(isa, seed=seed)
    if kind == "int_chain":
        for __ in range(n):
            builder.int_op()
    elif kind == "branchy":
        base = builder.alloc_code(2)
        for i in range(n):
            builder.int_op(pc=base)
            builder.branch(taken=(i % 2 == 0), target=base, pc=base + 4)
    elif kind == "loads":
        for i in range(n):
            builder.load(0x100000 + 8 * (i % 64))
    elif kind == "streams":
        for i in range(n):
            builder.mom_load(0x100000 + 128 * i, 16, 8)
            builder.mom_op(16)
    else:
        raise ValueError(kind)
    return Trace(
        name="tiny",
        isa=isa,
        instructions=builder.instructions,
        mmx_equivalent=sum(i.stream_length for i in builder.instructions),
        mix=WORKLOAD_MIXES["gsmdec"],
    )


def run_tiny(trace, isa=None, n_threads=1, memory=None, **kw):
    memory = memory or PerfectMemory()
    config = SMTConfig(isa=isa or trace.isa, n_threads=n_threads)
    processor = SMTProcessor(
        config,
        memory,
        [trace],
        completions_target=kw.pop("completions_target", 1),
        warmup_fraction=kw.pop("warmup_fraction", 0.0),
        **kw,
    )
    return processor.run()


class TestBasicExecution:
    def test_all_instructions_commit(self):
        result = run_tiny(tiny_trace(n=300))
        assert result.committed_instructions == 300
        assert result.program_completions == 1

    def test_ipc_bounded_by_issue_width(self):
        result = run_tiny(tiny_trace(kind="int_chain", n=2000))
        assert 0.5 < result.ipc <= 4.0     # 4 integer ALUs

    def test_streams_count_expanded(self):
        trace = tiny_trace(isa="mom", kind="streams", n=50)
        result = run_tiny(trace)
        assert result.committed_instructions == 50 * (16 + 16)

    def test_cycles_positive_and_finite(self):
        result = run_tiny(tiny_trace(n=50))
        assert 0 < result.cycles < 10_000

    def test_isa_mismatch_rejected(self):
        trace = tiny_trace(isa="mmx")
        with pytest.raises(ValueError):
            SMTProcessor(SMTConfig(isa="mom"), PerfectMemory(), [trace])

    def test_livelock_guard_raises(self):
        trace = tiny_trace(n=5000)
        processor = SMTProcessor(
            SMTConfig(), PerfectMemory(), [trace], max_cycles=10
        )
        with pytest.raises(RuntimeError):
            processor.run()


class TestBranchHandling:
    def test_branchy_code_slower_than_straightline(self):
        straight = run_tiny(tiny_trace(kind="int_chain", n=1000))
        branchy = run_tiny(tiny_trace(kind="branchy", n=500))
        # Same instruction count; the alternating branch must learn first
        # and every taken branch truncates the fetch group.
        assert branchy.ipc < straight.ipc

    def test_mispredict_rate_reported(self):
        result = run_tiny(tiny_trace(kind="branchy", n=500))
        assert 0.0 <= result.mispredict_rate <= 1.0


class TestSmtScaling:
    @pytest.fixture(scope="class")
    def workload(self):
        return {
            isa: build_workload_traces(isa, scale=SCALE) for isa in ("mmx", "mom")
        }

    def test_more_threads_more_throughput_ideal(self, workload):
        results = {}
        for n in (1, 4):
            processor = SMTProcessor(
                SMTConfig(isa="mmx", n_threads=n),
                PerfectMemory(),
                build_workload_traces("mmx", scale=SCALE),
            )
            results[n] = processor.run()
        assert results[4].eipc > 1.5 * results[1].eipc

    def test_mom_beats_mmx_on_equivalent_work(self, workload):
        eipc = {}
        for isa in ("mmx", "mom"):
            processor = SMTProcessor(
                SMTConfig(isa=isa, n_threads=2),
                PerfectMemory(),
                build_workload_traces(isa, scale=SCALE),
            )
            eipc[isa] = processor.run().eipc
        assert eipc["mom"] > eipc["mmx"]

    def test_completions_target_respected(self, workload):
        processor = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=2),
            PerfectMemory(),
            build_workload_traces("mmx", scale=SCALE),
            completions_target=3,
        )
        result = processor.run()
        assert result.program_completions == 3

    def test_per_program_committed_tracked(self, workload):
        processor = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=1),
            PerfectMemory(),
            build_workload_traces("mmx", scale=SCALE),
            completions_target=2,
        )
        result = processor.run()
        assert sum(result.per_program_committed.values()) > 0

    def test_fetch_policies_all_run(self, workload):
        for policy in FetchPolicy:
            processor = SMTProcessor(
                SMTConfig(isa="mom", n_threads=2),
                PerfectMemory(),
                build_workload_traces("mom", scale=SCALE),
                fetch_policy=policy,
            )
            result = processor.run()
            assert result.fetch_policy == policy.value
            assert result.committed_instructions > 0


class TestMemoryIntegration:
    def test_real_memory_slower_than_perfect(self):
        trace = build_program_trace("mpeg2enc", "mmx", scale=SCALE)
        ideal = run_tiny(trace, memory=PerfectMemory())
        real = run_tiny(trace, memory=ConventionalHierarchy())
        assert real.eipc < ideal.eipc

    def test_decoupled_hierarchy_runs_mom(self):
        trace = build_program_trace("mpeg2enc", "mom", scale=SCALE)
        result = run_tiny(trace, memory=DecoupledHierarchy())
        assert result.committed_instructions == trace.expanded_length
        assert result.memory.l2.accesses > 0

    def test_cache_stats_populated(self):
        trace = build_program_trace("jpegenc", "mmx", scale=SCALE)
        result = run_tiny(trace, memory=ConventionalHierarchy())
        assert result.memory.l1.accesses > 0
        assert result.memory.icache.accesses > 0
        assert 0.3 < result.memory.l1.hit_rate <= 1.0

    def test_warmup_excludes_cold_start(self):
        trace = build_program_trace("jpegenc", "mmx", scale=SCALE)
        cold = run_tiny(trace, memory=ConventionalHierarchy(), warmup_fraction=0.0)
        warm = run_tiny(trace, memory=ConventionalHierarchy(), warmup_fraction=0.4)
        assert warm.memory.l1.hit_rate >= cold.memory.l1.hit_rate
        assert warm.committed_instructions < cold.committed_instructions


class TestDeterminism:
    def test_same_run_same_result(self):
        results = []
        for __ in range(2):
            processor = SMTProcessor(
                SMTConfig(isa="mom", n_threads=2),
                ConventionalHierarchy(),
                build_workload_traces("mom", scale=SCALE),
            )
            results.append(processor.run())
        assert results[0].cycles == results[1].cycles
        assert results[0].committed_instructions == results[1].committed_instructions
        assert results[0].memory.l1.hits == results[1].memory.l1.hits
