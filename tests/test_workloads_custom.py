"""Tests for the user-defined-workload API."""

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.memory import PerfectMemory
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.workloads.custom import (
    VECTOR_PROFILES,
    build_custom_workload,
    define_program,
    remove_program,
)

SCALE = 1.2e-5


@pytest.fixture()
def clean_registry():
    added = []

    def _define(name, **kwargs):
        mix = define_program(name, **kwargs)
        added.append(name)
        return mix

    yield _define
    for name in added:
        WORKLOAD_MIXES.pop(name, None)


BASE = dict(
    minsts=120.0,
    frac_int=0.60,
    frac_fp=0.02,
    frac_simd=0.18,
    frac_mem=0.20,
)


class TestDefineProgram:
    def test_registers_and_generates(self, clean_registry):
        clean_registry("videochat", **BASE, vector_profile="motion_search")
        traces = build_custom_workload(["videochat"], "mom", scale=SCALE)
        assert traces[0].name == "videochat"
        assert traces[0].expanded_length > 500

    def test_mom_saves_instructions_for_vector_profiles(self, clean_registry):
        clean_registry("videochat", **BASE, vector_profile="motion_search")
        mmx = build_custom_workload(["videochat"], "mmx", scale=SCALE)[0]
        mom = build_custom_workload(["videochat"], "mom", scale=SCALE)[0]
        assert mom.expanded_length < mmx.expanded_length

    def test_duplicate_rejected_without_replace(self, clean_registry):
        clean_registry("dup", **BASE)
        with pytest.raises(ValueError):
            define_program("dup", **BASE)
        define_program("dup", **BASE, replace=True)   # fine

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            define_program("x", **BASE, vector_profile="warp_drive")

    def test_simd_with_scalar_only_profile_rejected(self):
        with pytest.raises(ValueError):
            define_program("x", **BASE, vector_profile="scalar_only")

    def test_fractions_validated_by_mix(self):
        with pytest.raises(ValueError):
            define_program(
                "bad", minsts=10, frac_int=0.9, frac_fp=0.5,
                frac_simd=0.0, frac_mem=0.0, vector_profile="scalar_only",
            )

    def test_all_profiles_instantiable(self, clean_registry):
        for i, profile in enumerate(VECTOR_PROFILES):
            simd = 0.0 if profile == "scalar_only" else 0.15
            clean_registry(
                f"probe{i}",
                minsts=50,
                frac_int=0.65,
                frac_fp=0.0,
                frac_simd=simd,
                frac_mem=0.35 - simd,
                vector_profile=profile,
            )
            build_custom_workload([f"probe{i}"], "mmx", scale=SCALE)


class TestRemoveProgram:
    def test_paper_programs_protected(self):
        with pytest.raises(ValueError):
            remove_program("mpeg2enc")

    def test_user_program_removable(self, clean_registry):
        clean_registry("ephemeral", **BASE)
        remove_program("ephemeral")
        assert "ephemeral" not in WORKLOAD_MIXES


class TestCustomWorkloadRuns:
    def test_simulates_end_to_end(self, clean_registry):
        clean_registry("audioserver", minsts=60, frac_int=0.7, frac_fp=0.0,
                       frac_simd=0.1, frac_mem=0.2,
                       vector_profile="stream_filter")
        traces = build_custom_workload(
            ["audioserver", "gsmdec", "audioserver"], "mom", scale=SCALE
        )
        result = SMTProcessor(
            SMTConfig(isa="mom", n_threads=2),
            PerfectMemory(),
            traces,
            completions_target=3,
        ).run()
        assert result.program_completions == 3
        assert result.eipc > 0.5

    def test_duplicate_instances_get_distinct_seeds(self, clean_registry):
        clean_registry("twin", **BASE)
        traces = build_custom_workload(["twin", "twin"], "mmx", scale=SCALE)
        a = [i.mem_addr for i in traces[0].instructions if i.is_mem][:40]
        b = [i.mem_addr for i in traces[1].instructions if i.is_mem][:40]
        assert a != b

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            build_custom_workload([], "mmx")
