"""Property-based tests of memory-system invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.memory import ConventionalHierarchy, DecoupledHierarchy
from repro.memory.cache import CacheConfig
from repro.memory.interface import AccessType as AT
from repro.memory.sram import TagArray

addresses = st.lists(
    st.integers(0, (1 << 20) - 1).map(lambda a: a & ~0x7),
    min_size=1,
    max_size=200,
)


class TestCausality:
    @given(addresses)
    @settings(max_examples=30, deadline=None)
    def test_completion_always_after_issue(self, addrs):
        memory = ConventionalHierarchy()
        now = 0
        for addr in addrs:
            done = memory.access(0, addr, AT.SCALAR_LOAD, now)
            assert done > now
            now = done

    @given(addresses)
    @settings(max_examples=20, deadline=None)
    def test_decoupled_completion_after_issue(self, addrs):
        memory = DecoupledHierarchy()
        now = 0
        for i, addr in enumerate(addrs):
            kind = AT.VECTOR_LOAD if i % 3 == 0 else AT.SCALAR_LOAD
            done = memory.access(0, addr, kind, now)
            assert done > now
            now = done

    @given(addresses)
    @settings(max_examples=20, deadline=None)
    def test_hit_counters_consistent(self, addrs):
        memory = ConventionalHierarchy()
        now = 0
        for addr in addrs:
            now = memory.access(0, addr, AT.SCALAR_LOAD, now)
        stats = memory.stats.l1
        assert 0 <= stats.hits <= stats.accesses == len(addrs)
        assert stats.misses == stats.accesses - stats.hits

    @given(addresses)
    @settings(max_examples=20, deadline=None)
    def test_immediate_reuse_always_hits(self, addrs):
        memory = ConventionalHierarchy()
        now = 0
        for addr in addrs:
            now = memory.access(0, addr, AT.SCALAR_LOAD, now)
            before = memory.stats.l1.hits
            now = memory.access(0, addr, AT.SCALAR_LOAD, now)
            assert memory.stats.l1.hits == before + 1


class TestCacheGeometry:
    @given(
        st.sampled_from([1, 2, 4]),
        st.lists(st.integers(0, 4095), min_size=1, max_size=400),
    )
    @settings(max_examples=25, deadline=None)
    def test_occupancy_bounded_by_capacity(self, assoc, lines):
        tags = TagArray(64, assoc)
        for line in lines:
            tags.fill(line)
        assert tags.occupancy() <= 64 * assoc

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_higher_associativity_never_evicts_sooner(self, lines):
        """A 2-way cache retains at least every line a DM cache retains
        under an identical reference stream ending in a probe."""
        direct = TagArray(32, 1)
        twoway = TagArray(32, 2)
        for line in lines:
            direct.fill(line)
            twoway.fill(line)
        # LRU inclusion property: the most recent fill per set survives
        # in both; check the final reference specifically.
        assert twoway.lookup(lines[-1], update_lru=False)
        assert direct.lookup(lines[-1], update_lru=False)

    def test_bigger_cache_fewer_misses_on_loop(self):
        small = CacheConfig("s", size=4 << 10, assoc=1, line=32, banks=1, latency=1)
        big = CacheConfig("b", size=64 << 10, assoc=1, line=32, banks=1, latency=1)
        misses = {}
        for label, config in (("small", small), ("big", big)):
            memory = ConventionalHierarchy(l1_config=config)
            now = 0
            for __ in range(3):
                for addr in range(0, 16 << 10, 32):   # 16 KB loop
                    now = memory.access(0, addr, AT.SCALAR_LOAD, now)
            misses[label] = memory.stats.l1.misses
        assert misses["big"] < misses["small"]


class TestThreadIsolationOfTranslation:
    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, (1 << 24) - 1))
    @settings(max_examples=50, deadline=None)
    def test_same_thread_same_translation(self, t1, t2, addr):
        from repro.memory.interface import physical_address

        first = physical_address(t1, addr)
        again = physical_address(t1, addr)
        assert first == again
        if t1 != t2:
            # Different contexts map the same VA to different frames
            # (with overwhelming probability for a correct hash).
            other = physical_address(t2, addr)
            assert (first >> 12) != (other >> 12) or t1 == t2
