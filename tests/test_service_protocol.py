"""Wire protocol of the sweep service: framing, validation, round trips."""

import json

import pytest

from repro.analysis.runner import RunRequest
from repro.service import protocol
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    request_from_wire,
    request_to_wire,
)


class TestFraming:
    def test_round_trip(self):
        message = {"op": "hello", "name": "client-a", "n": 3}
        assert decode_frame(encode_frame(message)) == message

    def test_frames_are_newline_delimited(self):
        frame = encode_frame({"op": "ok"})
        assert frame.endswith(b"\n")
        assert b"\n" not in frame[:-1]

    def test_frames_are_canonical(self):
        # Sorted keys + compact separators: identical messages yield
        # identical bytes regardless of construction order.
        a = encode_frame({"op": "x", "b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1, "op": "x"})
        assert a == b
        assert b": " not in a

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds the"):
            encode_frame({"op": "x", "blob": "y" * MAX_FRAME_BYTES})

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ProtocolError, match="not UTF-8"):
            decode_frame(b"\xff\xfe{}\n")

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_frame(b"{torn\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1, 2]\n")

    def test_decode_rejects_missing_op(self):
        with pytest.raises(ProtocolError, match="'op'"):
            decode_frame(b'{"name": "x"}\n')

    def test_decode_rejects_non_string_op(self):
        with pytest.raises(ProtocolError, match="'op'"):
            decode_frame(b'{"op": 7}\n')


class TestRequestWire:
    def request(self, **overrides) -> RunRequest:
        base = dict(isa="mmx", n_threads=2, scale=1e-5)
        base.update(overrides)
        return RunRequest(**base)

    def test_round_trip_preserves_fingerprint(self):
        request = self.request(
            memory="decoupled", seed=3, sampling=(1000, 200, 50)
        )
        clone = request_from_wire(request_to_wire(request))
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()

    def test_round_trip_survives_json(self):
        # The wire dict must be JSON-clean: tuples come back as lists
        # and still reconstruct an equal request.
        request = self.request(sampling=(1000, 200, 50))
        wire = json.loads(json.dumps(request_to_wire(request)))
        assert request_from_wire(wire) == request

    def test_fetch_policy_travels_as_plain_string(self):
        from repro.core.fetch import FetchPolicy

        request = self.request(fetch_policy=FetchPolicy.ICOUNT)
        wire = request_to_wire(request)
        assert wire["fetch_policy"] == "icount"
        assert request_from_wire(wire) == request

    def test_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            request_from_wire(["isa", "mmx"])

    def test_rejects_unknown_fields(self):
        wire = request_to_wire(self.request())
        wire["bitcoin_miner"] = True
        with pytest.raises(ProtocolError, match="unknown request field"):
            request_from_wire(wire)

    def test_rejects_incomplete_request(self):
        with pytest.raises(ProtocolError, match="incomplete request"):
            request_from_wire({"isa": "mmx"})

    def test_rejects_invalid_values(self):
        wire = request_to_wire(self.request())
        wire["backend"] = "quantum"
        with pytest.raises(ProtocolError, match="invalid request"):
            request_from_wire(wire)

    def test_strategy_fields_never_move_the_fingerprint(self):
        # window_jobs/backend travel (the dataclass carries them) but
        # are execution strategy, not identity: a client and server
        # disagreeing on them must still share one cache slot.
        wire = request_to_wire(self.request())
        assert set(wire) == set(protocol._REQUEST_FIELDS)
        baseline = request_from_wire(dict(wire)).fingerprint()
        wire["window_jobs"] = 4
        wire["backend"] = "object"
        assert request_from_wire(wire).fingerprint() == baseline


class TestVersioning:
    def test_protocol_version_is_one(self):
        assert protocol.PROTOCOL_VERSION == 1
