"""Runtime sanitizer: clean end-to-end runs, zero overhead off, injected
violations caught with structured codes."""

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.core.queues import IssueQueue
from repro.core.rob import GraduationWindow
from repro.memory import ConventionalHierarchy, DecoupledHierarchy
from repro.memory.mshr import MshrFile
from repro.memory.writebuffer import WriteBuffer
from repro.tracegen import build_program_trace
from repro.verify.sanitizer import InvariantViolation, RuntimeSanitizer

SCALE = 2e-5


def run_pair(isa, memory_cls, sanitize):
    traces = [
        build_program_trace("jpegenc", isa, scale=SCALE),
        build_program_trace("gsmdec", isa, scale=SCALE),
    ]
    config = SMTConfig(isa=isa, n_threads=2, sanitize=sanitize)
    processor = SMTProcessor(
        config,
        memory_cls(),
        traces,
        completions_target=1,
        warmup_fraction=0.0,
    )
    return processor, processor.run()


def result_key(result):
    return (
        result.cycles,
        result.committed_instructions,
        result.committed_equivalent,
        result.program_completions,
        result.mispredict_rate,
    )


# ----- end-to-end: clean runs -----------------------------------------------


@pytest.mark.parametrize(
    "isa,memory_cls",
    [
        ("mom", DecoupledHierarchy),
        ("mmx", ConventionalHierarchy),
    ],
)
def test_sanitized_run_is_clean_and_bit_identical(isa, memory_cls):
    processor, sanitized = run_pair(isa, memory_cls, sanitize=True)
    assert processor.sanitizer is not None
    assert processor.sanitizer.checks > 0
    # The sanitizer observes; it must never perturb the model.
    __, plain = run_pair(isa, memory_cls, sanitize=False)
    assert result_key(sanitized) == result_key(plain)


def test_sanitizer_off_by_default_and_unhooked():
    processor, __ = run_pair("mom", DecoupledHierarchy, sanitize=False)
    assert processor.sanitizer is None
    assert processor.window.sanitizer is None
    assert all(q.sanitizer is None for q in processor.queues.values())
    assert processor.memory.sanitizer is None


# ----- injected violations ---------------------------------------------------


def test_out_of_order_retirement_is_caught():
    window = GraduationWindow(capacity=8, n_threads=1)
    window.sanitizer = RuntimeSanitizer()
    first, second = object(), object()
    window.insert(0, first)
    window.insert(0, second)
    window._fifos[0].rotate(1)            # younger entry now at the head
    window.retire_head(0)
    with pytest.raises(InvariantViolation) as exc:
        window.retire_head(0)
    assert exc.value.code == "SAN-RETIRE-ORDER"
    assert exc.value.details["thread"] == 0


def test_window_count_corruption_is_caught():
    window = GraduationWindow(capacity=8, n_threads=1)
    sanitizer = RuntimeSanitizer()
    window.sanitizer = sanitizer
    window.insert(0, object())
    window.occupancy = 3                  # counter no longer matches contents
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_window(window)
    assert exc.value.code == "SAN-WINDOW-COUNT"


def test_window_overflow_is_caught():
    window = GraduationWindow(capacity=2, n_threads=1)
    sanitizer = RuntimeSanitizer()
    window._fifos[0].extend(object() for __ in range(3))
    window.occupancy = 3
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_window(window)
    assert exc.value.code == "SAN-WINDOW-OVERFLOW"


def test_queue_occupancy_corruption_is_caught():
    queue = IssueQueue("int", capacity=4)
    sanitizer = RuntimeSanitizer()
    queue.occupancy = 5
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_queue(queue)
    assert exc.value.code == "SAN-QUEUE-OCCUPANCY"


def test_queue_ready_overrun_is_caught():
    queue = IssueQueue("int", capacity=4)
    sanitizer = RuntimeSanitizer()
    queue.ready.append(object())          # ready entry with occupancy 0
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_queue(queue)
    assert exc.value.code == "SAN-QUEUE-READY"


def test_mshr_leak_is_caught():
    mshr = MshrFile(n_entries=2)
    sanitizer = RuntimeSanitizer()
    mshr._pending.update({a: 10**9 for a in (1, 2, 3)})
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_mshr(mshr, now=0)
    assert exc.value.code == "SAN-MSHR-LEAK"


def test_write_buffer_overflow_is_caught():
    buffer = WriteBuffer(depth=2)
    sanitizer = RuntimeSanitizer()
    buffer._entries.update({a: 10**9 for a in (1, 2, 3)})
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_writebuffer(buffer, now=0)
    assert exc.value.code == "SAN-WB-OVERFLOW"


def test_stream_line_resident_in_l1_is_caught():
    memory = DecoupledHierarchy()
    sanitizer = RuntimeSanitizer()
    addr = 0x4000
    memory.l1.load_line(addr, 0)          # line now resident
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.check_stream_bypass(memory.l1, addr)
    assert exc.value.code == "SAN-STREAM-L1-RESIDENT"


def test_finalize_catches_leaked_mshr_entry():
    processor, __ = run_pair("mom", DecoupledHierarchy, sanitize=True)
    sanitizer = processor.sanitizer
    # A fill timestamp absurdly far past the end of the run is a leak.
    processor.memory.l1.mshr._pending[0xDEAD] = processor.now + 10**9
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.finalize(
            processor.now,
            processor.window,
            processor.queues.values(),
            processor.memory,
        )
    assert exc.value.code == "SAN-MSHR-LEAK"


def test_finalize_catches_undrained_write_buffer():
    processor, __ = run_pair("mom", DecoupledHierarchy, sanitize=True)
    sanitizer = processor.sanitizer
    buffer = processor.memory.l1.write_buffer
    buffer._entries[0xBEEF] = buffer._last_drain + 1_000
    with pytest.raises(InvariantViolation) as exc:
        sanitizer.finalize(
            processor.now,
            processor.window,
            processor.queues.values(),
            processor.memory,
        )
    assert exc.value.code == "SAN-WB-UNDRAINED"


def test_violation_is_a_structured_assertion():
    violation = InvariantViolation(
        "rob", "SAN-RETIRE-ORDER", "boom", {"thread": 1}
    )
    assert isinstance(violation, AssertionError)
    assert "[SAN-RETIRE-ORDER]" in str(violation)
    assert violation.component == "rob"
    assert violation.details == {"thread": 1}
