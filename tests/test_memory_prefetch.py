"""Tests for the stride prefetcher extension."""

import pytest

from repro.memory import ConventionalHierarchy
from repro.memory.interface import AccessType as AT
from repro.memory.prefetch import PrefetchingHierarchy, StridePrefetcher


class TestStrideDetection:
    def _hierarchy(self, depth=2):
        return PrefetchingHierarchy(depth=depth)

    def test_steady_stride_launches_prefetches(self):
        m = self._hierarchy()
        now = 0
        # Miss every 32 bytes (one line per access) at a constant stride.
        for i in range(8):
            now = m.access(0, 0x100000 + 32 * i, AT.SCALAR_LOAD, now)
        assert m.prefetcher.issued > 0

    def test_prefetched_lines_hit_later(self):
        m = self._hierarchy(depth=4)
        plain = ConventionalHierarchy()
        now_pf = now_pl = 0
        hits_pf = hits_pl = 0
        for i in range(64):
            addr = 0x200000 + 32 * i
            before = m.stats.l1.hits
            now_pf = m.access(0, addr, AT.SCALAR_LOAD, now_pf)
            hits_pf += m.stats.l1.hits - before
            before = plain.stats.l1.hits
            now_pl = plain.access(0, addr, AT.SCALAR_LOAD, now_pl)
            hits_pl += plain.stats.l1.hits - before
        assert hits_pf > hits_pl

    def test_random_pattern_stays_quiet(self):
        import random

        rng = random.Random(5)
        m = self._hierarchy()
        now = 0
        for __ in range(40):
            addr = 0x300000 + 32 * rng.randrange(4096)
            now = m.access(0, addr, AT.SCALAR_LOAD, now)
        # Random misses never build stride confidence.
        assert m.prefetcher.issued <= 2

    def test_per_thread_streams_independent(self):
        m = self._hierarchy()
        now = 0
        for i in range(6):
            now = m.access(0, 0x400000 + 64 * i, AT.SCALAR_LOAD, now)
            now = m.access(1, 0x800000 + 128 * i, AT.SCALAR_LOAD, now)
        # Interleaving two different-stride threads still detects both.
        assert m.prefetcher.issued > 0

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            StridePrefetcher(ConventionalHierarchy().l1, depth=0)

    def test_stores_do_not_train(self):
        m = self._hierarchy()
        now = 0
        for i in range(8):
            now = m.access(0, 0x500000 + 32 * i, AT.SCALAR_STORE, now)
        assert m.prefetcher.issued == 0
