"""The deterministic fault-injection harness."""

import json
import os
import time

import pytest

from repro.verify import faultinject
from repro.verify.faultinject import (
    CORRUPT_PAYLOAD,
    ENV_VAR,
    FaultPlan,
    SimulatedWorkerCrash,
)


@pytest.fixture(autouse=True)
def clean_plan():
    """No plan leaks into (or out of) any test."""
    faultinject.install(None)
    yield
    faultinject.install(None)


class TestFaultPlan:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan(hang_fraction=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(crash_fraction=0.6, hang_fraction=0.6)

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=3, crash_fraction=0.3, hang_fraction=0.3)
        again = FaultPlan(seed=3, crash_fraction=0.3, hang_fraction=0.3)
        for i in range(200):
            fingerprint = f"fp{i}"
            assert plan.execution_fault(fingerprint, 0) == again.execution_fault(
                fingerprint, 0
            )
            assert plan.corrupts_cache(fingerprint, 0) == again.corrupts_cache(
                fingerprint, 0
            )

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, crash_fraction=0.5)
        b = FaultPlan(seed=2, crash_fraction=0.5)
        decisions_a = [a.execution_fault(f"fp{i}", 0) for i in range(100)]
        decisions_b = [b.execution_fault(f"fp{i}", 0) for i in range(100)]
        assert decisions_a != decisions_b

    def test_fractions_are_approximately_honored(self):
        plan = FaultPlan(
            seed=0, crash_fraction=0.2, hang_fraction=0.1, corrupt_fraction=0.3
        )
        n = 4000
        crashes = hangs = corrupts = 0
        for i in range(n):
            fault = plan.execution_fault(f"fp{i}", 0)
            crashes += fault == "crash"
            hangs += fault == "hang"
            corrupts += plan.corrupts_cache(f"fp{i}", 0)
        assert 0.17 < crashes / n < 0.23
        assert 0.08 < hangs / n < 0.12
        assert 0.27 < corrupts / n < 0.33

    def test_faults_fire_only_on_the_chosen_attempt(self):
        plan = FaultPlan(crash_fraction=1.0, corrupt_fraction=1.0, fault_attempt=1)
        assert plan.execution_fault("fp", 0) is None
        assert plan.execution_fault("fp", 1) == "crash"
        assert plan.execution_fault("fp", 2) is None
        assert not plan.corrupts_cache("fp", 0)
        assert plan.corrupts_cache("fp", 1)

    def test_json_round_trip(self):
        plan = FaultPlan(seed=9, crash_fraction=0.25, hang_seconds=12.5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_disconnect_fraction_validated(self):
        with pytest.raises(ValueError, match="disconnect_fraction"):
            FaultPlan(disconnect_fraction=1.01)
        with pytest.raises(ValueError, match="disconnect_fraction"):
            FaultPlan(disconnect_fraction=-0.5)

    def test_disconnects_are_deterministic_and_delivery_gated(self):
        plan = FaultPlan(seed=4, disconnect_fraction=0.5)
        decisions = [plan.drops_connection(f"fp{i}", 0) for i in range(200)]
        assert decisions == [
            plan.drops_connection(f"fp{i}", 0) for i in range(200)
        ]
        assert any(decisions) and not all(decisions)
        # Deliveries other than fault_attempt always go through — the
        # redelivery after a drop must succeed so chaos runs converge.
        assert not any(
            plan.drops_connection(f"fp{i}", 1) for i in range(200)
        )
        assert not any(
            FaultPlan(disconnect_fraction=1.0).drops_connection(f"fp{i}", 1)
            for i in range(50)
        )

    def test_disconnect_draw_independent_of_execution_faults(self):
        # Salted separately ("net" vs "run"): the set of dropped
        # deliveries must not simply mirror the set of crashed runs.
        plan = FaultPlan(seed=0, crash_fraction=0.5, disconnect_fraction=0.5)
        crashed = [
            plan.execution_fault(f"fp{i}", 0) == "crash" for i in range(300)
        ]
        dropped = [plan.drops_connection(f"fp{i}", 0) for i in range(300)]
        assert crashed != dropped


class TestActivation:
    def test_no_plan_by_default(self):
        assert faultinject.active_plan() is None

    def test_install_sets_and_clears_environment(self):
        plan = FaultPlan(seed=4, crash_fraction=0.5)
        faultinject.install(plan)
        assert faultinject.active_plan() == plan
        assert json.loads(os.environ[ENV_VAR]) == json.loads(plan.to_json())
        faultinject.install(None)
        assert faultinject.active_plan() is None
        assert ENV_VAR not in os.environ

    def test_plan_parsed_from_environment(self, monkeypatch):
        plan = FaultPlan(seed=11, hang_fraction=0.2)
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert faultinject.active_plan() == plan

    def test_malformed_environment_plan_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        with pytest.raises(ValueError):
            faultinject.active_plan()


class TestFireHooks:
    def test_noop_without_plan(self):
        faultinject.fire_execution_fault("fp", 0)  # must not raise

    def test_crash_in_process_raises_simulated_crash(self):
        faultinject.install(FaultPlan(crash_fraction=1.0))
        with pytest.raises(SimulatedWorkerCrash):
            faultinject.fire_execution_fault("fp", 0)
        faultinject.fire_execution_fault("fp", 1)  # wrong attempt: no fault

    def test_hang_sleeps_finitely_then_returns(self):
        faultinject.install(FaultPlan(hang_fraction=1.0, hang_seconds=0.05))
        started = time.perf_counter()
        faultinject.fire_execution_fault("fp", 0)
        assert time.perf_counter() - started >= 0.05

    def test_corrupt_cache_entry(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text('{"checksum": "x", "payload": {}}')
        faultinject.install(FaultPlan(corrupt_fraction=1.0))
        assert faultinject.corrupt_cache_entry(str(path), "fp", 0)
        assert path.read_bytes() == CORRUPT_PAYLOAD
        # Wrong attempt: untouched.
        path.write_text("intact")
        assert not faultinject.corrupt_cache_entry(str(path), "fp", 1)
        assert path.read_text() == "intact"

    def test_corrupt_respects_fraction_zero(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("intact")
        faultinject.install(FaultPlan(corrupt_fraction=0.0))
        assert not faultinject.corrupt_cache_entry(str(path), "fp", 0)
        assert path.read_text() == "intact"
