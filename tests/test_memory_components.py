"""Unit tests for the memory-hierarchy building blocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.dram import RambusChannel
from repro.memory.mshr import MshrFile
from repro.memory.sram import TagArray
from repro.memory.writebuffer import WriteBuffer


class TestTagArray:
    def test_miss_then_hit(self):
        tags = TagArray(64, 1)
        assert not tags.lookup(5)
        tags.fill(5)
        assert tags.lookup(5)

    def test_direct_mapped_conflict(self):
        tags = TagArray(64, 1)
        tags.fill(5)
        tags.fill(5 + 64)         # same set, different tag
        assert not tags.lookup(5)
        assert tags.lookup(5 + 64)

    def test_two_way_keeps_both(self):
        tags = TagArray(64, 2)
        tags.fill(5)
        tags.fill(5 + 64)
        assert tags.lookup(5)
        assert tags.lookup(5 + 64)

    def test_lru_evicts_least_recent(self):
        tags = TagArray(1, 2)
        tags.fill(0)
        tags.fill(1)
        tags.lookup(0)            # touch 0 -> 1 becomes LRU
        victim = tags.fill(2)
        assert victim == (1, False)
        assert tags.lookup(0) and tags.lookup(2) and not tags.lookup(1)

    def test_fill_existing_returns_none(self):
        tags = TagArray(8, 2)
        tags.fill(3)
        assert tags.fill(3) is None

    def test_dirty_eviction_reported(self):
        tags = TagArray(1, 1)
        tags.fill(7, dirty=True)
        victim = tags.fill(8)
        assert victim == (7, True)

    def test_mark_dirty(self):
        tags = TagArray(8, 1)
        tags.fill(2)
        assert tags.mark_dirty(2)
        assert not tags.mark_dirty(99)
        assert tags.fill(2 + 8) == (2, True)

    def test_invalidate(self):
        tags = TagArray(8, 1)
        tags.fill(2)
        assert tags.invalidate(2)
        assert not tags.lookup(2)
        assert not tags.invalidate(2)

    def test_power_of_two_sets_required(self):
        with pytest.raises(ValueError):
            TagArray(48, 1)

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
    @settings(max_examples=25)
    def test_occupancy_never_exceeds_capacity(self, lines):
        tags = TagArray(16, 2)
        for line in lines:
            tags.fill(line)
        assert tags.occupancy() <= 16 * 2

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=25)
    def test_most_recent_fill_always_present(self, lines):
        tags = TagArray(16, 2)
        for line in lines:
            tags.fill(line)
            assert tags.lookup(line, update_lru=False)


class TestMshr:
    def test_allocation_and_pending(self):
        mshr = MshrFile(2)
        mshr.allocate(10, fill_cycle=50, now=0)
        assert mshr.pending_fill(10, now=5) == 50
        assert mshr.pending_fill(10, now=50) is None   # fill completed
        assert mshr.pending_fill(11, now=5) is None

    def test_earliest_free_when_full(self):
        mshr = MshrFile(2)
        mshr.allocate(1, 30, 0)
        mshr.allocate(2, 60, 0)
        assert mshr.earliest_free(10) == 30
        assert mshr.earliest_free(40) == 40   # entry 1 expired by then

    def test_overflow_rejected(self):
        mshr = MshrFile(1)
        mshr.allocate(1, 100, 0)
        with pytest.raises(RuntimeError):
            mshr.allocate(2, 100, 0)

    def test_outstanding_counts_live_entries(self):
        mshr = MshrFile(4)
        mshr.allocate(1, 20, 0)
        mshr.allocate(2, 40, 0)
        assert mshr.outstanding(10) == 2
        assert mshr.outstanding(30) == 1
        assert mshr.outstanding(50) == 0

    def test_needs_positive_capacity(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestWriteBuffer:
    def test_coalescing_same_line(self):
        wb = WriteBuffer(depth=4, drain_interval=4)
        assert wb.push(7, now=0) == 0
        assert wb.push(7, now=1) == 1     # coalesces, no new slot
        assert wb.coalesced == 1
        assert wb.occupancy(1) == 1

    def test_full_buffer_stalls_store(self):
        wb = WriteBuffer(depth=2, drain_interval=100)
        wb.push(1, 0)
        wb.push(2, 0)
        accepted = wb.push(3, 1)
        assert accepted > 1               # had to wait for a drain
        assert wb.full_stalls == 1

    def test_selective_flush_reports_drain_time(self):
        wb = WriteBuffer(depth=4, drain_interval=10)
        wb.push(5, now=0)
        assert wb.flush_line(5, now=3) >= 3
        assert wb.flush_line(99, now=3) == 3   # not buffered

    def test_drain_rate_spaced(self):
        wb = WriteBuffer(depth=8, drain_interval=5)
        wb.push(1, 0)
        wb.push(2, 0)
        t1 = wb.flush_line(1, 0)
        t2 = wb.flush_line(2, 0)
        assert abs(t2 - t1) >= 5

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            WriteBuffer(depth=0)


class TestRambus:
    def test_latency_plus_transfer(self):
        chan = RambusChannel(latency=60, bytes_per_cycle=4)
        done = chan.access(now=0, n_bytes=128)
        assert done == 60 + 32

    def test_bandwidth_queueing(self):
        chan = RambusChannel(latency=60, bytes_per_cycle=4)
        first = chan.access(0, 128)
        second = chan.access(0, 128)
        assert second == first + 32       # queued behind the first transfer

    def test_idle_channel_no_queueing(self):
        chan = RambusChannel(latency=60, bytes_per_cycle=4)
        chan.access(0, 128)
        later = chan.access(1000, 128)
        assert later == 1000 + 60 + 32

    def test_utilization(self):
        chan = RambusChannel(latency=10, bytes_per_cycle=4)
        chan.access(0, 128)
        assert chan.utilization(64) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RambusChannel(latency=0)
