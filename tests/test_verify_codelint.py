"""Seeded-defect tests for the repo-wide AST linter (repro.verify.codelint).

Every rule family gets fixtures that plant the exact defect class the
rule exists for and assert the stable diagnostic code fires — plus a
clean twin proving the blessed idiom passes.  Suppression comments,
the baseline round-trip, and the registry's internal consistency are
covered at the end, along with the repo-is-clean acceptance check.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.verify import codelint

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(diags):
    return sorted(d.code for d in diags)


def lint_one(path, text, families=()):
    return codelint.lint_sources({path: text}, families)


# --------------------------------------------------------------------- DET


def test_det_module_level_rng_flagged():
    diags = lint_one(
        "core/sched.py",
        "import random\n"
        "def pick(items):\n"
        "    return random.choice(items)\n",
    )
    assert codes(diags) == ["DET-RNG"]
    assert diags[0].line == 3


def test_det_wall_clock_direct_and_via_alias():
    diags = lint_one(
        "memory/dram.py",
        "import time\n"
        "def stamp():\n"
        "    clock = time.perf_counter\n"
        "    return time.time(), clock()\n",
    )
    assert codes(diags) == ["DET-CLOCK", "DET-CLOCK"]


def test_det_laundered_clock_reference_flagged():
    # The obs/profile.py pattern: the banned callable is never *called*
    # by name, only stashed as a default argument and invoked later.
    diags = lint_one(
        "core/timing.py",
        "import time\n"
        "def make(clock=time.perf_counter):\n"
        "    return clock\n",
    )
    assert codes(diags) == ["DET-CLOCK"]


def test_det_entropy_and_unseeded_random():
    diags = lint_one(
        "tracegen/seed.py",
        "import os\n"
        "import random\n"
        "def make():\n"
        "    rng = random.Random()\n"
        "    return os.urandom(8), rng\n",
    )
    assert codes(diags) == ["DET-ENTROPY", "DET-UNSEEDED-RANDOM"]


def test_det_seeded_random_is_clean():
    diags = lint_one(
        "tracegen/seed.py",
        "import random\n"
        "def make(seed):\n"
        "    return random.Random(seed)\n",
    )
    assert diags == []


def test_det_set_iteration_order():
    diags = lint_one(
        "isa/tables.py",
        "def walk(s):\n"
        "    for item in {1, 2, 3}:\n"
        "        yield item\n"
        "    return list({4, 5})\n",
    )
    assert codes(diags) == ["DET-SET-ORDER", "DET-SET-ORDER"]


def test_det_sorted_set_is_clean():
    diags = lint_one(
        "isa/tables.py",
        "def walk():\n"
        "    return sorted({3, 1, 2})\n",
    )
    assert diags == []


def test_det_scope_excludes_analysis_layer():
    # The sweep driver may time itself; DET polices only the simulation
    # packages (plus obs/, where profile.py carries its own exemption).
    diags = lint_one(
        "analysis/driver.py",
        "import time\n"
        "def bench():\n"
        "    return time.perf_counter()\n",
    )
    assert [d for d in diags if d.code.startswith("DET-")] == []


# --------------------------------------------------------------------- FPR

_PARAMS = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class SMTConfig:\n"
    "    threads: int = 4\n"
    "    lanes: int = 8\n"
)


def _runner(exempt="{'lanes': 'derived from threads'}",
            request_fields="    threads: int = 4\n",
            fingerprint=(
                "    def fingerprint(self):\n"
                "        return repr(asdict(self))\n"
            ),
            construct="SMTConfig(threads=request.threads)"):
    return (
        "from dataclasses import asdict, dataclass\n"
        "from repro.core.params import SMTConfig\n"
        f"FINGERPRINT_EXEMPT_CONFIG_FIELDS = {exempt}\n"
        "@dataclass(frozen=True)\n"
        "class RunRequest:\n"
        f"{request_fields}"
        f"{fingerprint}"
        "def execute_request(request):\n"
        f"    return {construct}\n"
    )


def _lint_fpr(runner_text, params_text=_PARAMS):
    return codelint.lint_sources(
        {"core/params.py": params_text, "analysis/runner.py": runner_text},
        families=("FPR",),
    )


def test_fpr_clean_fixture_passes():
    assert _lint_fpr(_runner()) == []


def test_fpr_unfingerprinted_config_field():
    diags = _lint_fpr(_runner(exempt="{}"))
    assert codes(diags) == ["FPR-CONFIG-UNFINGERPRINTED"]
    assert diags[0].location == "core/params.py"
    assert "lanes" in diags[0].message


def test_fpr_stale_exemption_entry():
    diags = _lint_fpr(
        _runner(exempt="{'lanes': 'derived', 'ghost': 'removed in PR 9'}")
    )
    assert codes(diags) == ["FPR-EXEMPT-STALE"]
    assert "ghost" in diags[0].message


def test_fpr_exempt_and_forwarded_contradict():
    diags = _lint_fpr(
        _runner(
            exempt="{'lanes': 'derived', 'threads': 'wrong'}",
        )
    )
    assert codes(diags) == ["FPR-EXEMPT-CONTRADICTION"]
    assert "threads" in diags[0].message


def test_fpr_request_field_never_read():
    diags = _lint_fpr(
        _runner(
            request_fields="    threads: int = 4\n    debug: bool = False\n"
        )
    )
    assert codes(diags) == ["FPR-REQUEST-UNUSED"]
    assert "debug" in diags[0].message


def test_fpr_fingerprint_dropped_asdict_must_enumerate():
    fingerprint = (
        "    def fingerprint(self):\n"
        "        return repr(self.threads)\n"
    )
    clean = _lint_fpr(_runner(fingerprint=fingerprint))
    assert clean == []  # explicit enumeration covering every field is fine
    diags = _lint_fpr(
        _runner(
            request_fields="    threads: int = 4\n    seed: int = 0\n",
            fingerprint=fingerprint,
            construct=(
                "SMTConfig(threads=request.threads + request.seed)"
            ),
        )
    )
    assert "FPR-FINGERPRINT-MISSING" in codes(diags)


def test_fpr_noop_without_fingerprint_layer():
    # Fixture sets that don't model params/runner say nothing.
    diags = codelint.lint_sources(
        {"core/other.py": "X = 1\n"}, families=("FPR",)
    )
    assert diags == []


# -------------------------------------------------------------------- HOOK


def test_hook_unguarded_observer_call():
    diags = lint_one(
        "core/pipeline.py",
        "class P:\n"
        "    def commit(self):\n"
        "        self.observer.on_commit(1)\n",
    )
    assert codes(diags) == ["HOOK-UNGUARDED-CALL"]


def test_hook_truthiness_guard_rejected():
    # `if self.observer:` costs a __bool__ dispatch and is not the
    # documented idiom; only `is not None` counts as a guard.
    diags = lint_one(
        "core/pipeline.py",
        "class P:\n"
        "    def commit(self):\n"
        "        if self.observer:\n"
        "            self.observer.on_commit(1)\n",
    )
    assert codes(diags) == ["HOOK-UNGUARDED-CALL"]


def test_hook_direct_guard_is_clean():
    diags = lint_one(
        "core/pipeline.py",
        "class P:\n"
        "    def commit(self):\n"
        "        if self.observer is not None:\n"
        "            self.observer.on_commit(1)\n",
    )
    assert diags == []


def test_hook_hoisted_inverted_guard_is_clean():
    # The fused-loop idiom from core/smt.py: hoist, early-exit on None,
    # then call unguarded for the rest of the block.
    diags = lint_one(
        "core/smt.py",
        "class S:\n"
        "    def step(self):\n"
        "        observer = self.observer\n"
        "        for unit in self.units:\n"
        "            if observer is None:\n"
        "                break\n"
        "            observer.stall(unit)\n",
    )
    assert diags == []


def test_hook_conditional_expression_guard_is_clean():
    diags = lint_one(
        "core/smt.py",
        "class S:\n"
        "    def snap(self):\n"
        "        return (self.observer.snapshot()\n"
        "                if self.observer is not None else None)\n",
    )
    assert diags == []


def test_hook_eager_obs_import_in_core():
    diags = lint_one(
        "core/pipeline.py",
        "from repro.obs.events import ObserverEvent\n",
    )
    assert codes(diags) == ["HOOK-EAGER-IMPORT"]


def test_hook_lazy_import_and_out_of_scope_are_clean():
    assert lint_one(
        "core/pipeline.py",
        "def attach(run):\n"
        "    from repro.obs.events import ObserverEvent\n"
        "    return ObserverEvent(run)\n",
    ) == []
    # analysis/ composes the layers; eager imports are its job.
    assert lint_one(
        "analysis/runner2.py",
        "from repro.obs.events import ObserverEvent\n",
    ) == []


# -------------------------------------------------------------------- POOL


def test_pool_exception_without_reduce():
    diags = lint_one(
        "analysis/errors.py",
        "class SweepCrash(RuntimeError):\n"
        "    def __init__(self, stage, payload):\n"
        "        super().__init__(f'{stage}: {payload}')\n"
        "        self.stage = stage\n",
    )
    assert codes(diags) == ["POOL-EXC-REDUCE"]


def test_pool_exception_with_reduce_or_message_only_is_clean():
    assert lint_one(
        "analysis/errors.py",
        "class SweepCrash(RuntimeError):\n"
        "    def __init__(self, stage, payload):\n"
        "        super().__init__(f'{stage}: {payload}')\n"
        "        self.stage = stage\n"
        "        self.payload = payload\n"
        "    def __reduce__(self):\n"
        "        return (self.__class__, (self.stage, self.payload))\n",
    ) == []
    assert lint_one(
        "analysis/errors.py",
        "class SimpleCrash(RuntimeError):\n"
        "    def __init__(self, message):\n"
        "        super().__init__(message)\n",
    ) == []


def test_pool_lambda_and_local_def_submitted():
    diags = lint_one(
        "analysis/sweep.py",
        "def run(pool, items):\n"
        "    def helper(x):\n"
        "        return x + 1\n"
        "    a = pool.submit(lambda x: x, items[0])\n"
        "    b = pool.submit(helper, items[1])\n"
        "    return a, b\n",
    )
    assert codes(diags) == ["POOL-LOCAL-CALLABLE", "POOL-LOCAL-CALLABLE"]


def test_pool_module_level_task_is_clean():
    diags = lint_one(
        "analysis/sweep.py",
        "def worker(x):\n"
        "    return x + 1\n"
        "def run(executor, items):\n"
        "    return executor.map(worker, items)\n",
    )
    assert diags == []


def test_pool_lowercase_mutable_global():
    diags = lint_one(
        "analysis/cache.py",
        "results = {}\n",
    )
    assert codes(diags) == ["POOL-MUTABLE-GLOBAL"]


def test_pool_upper_case_memo_is_clean():
    diags = lint_one(
        "analysis/cache.py",
        "_WORKLOAD_MEMO = {}\n"
        "RESULTS: dict = dict()\n",
    )
    assert diags == []


# --------------------------------------------------------------------- HOT

_HOT_BODY = (
    "class Sim:\n"
    "    {marker}\n"
    "    def step(self):\n"
    "        on_cycle = lambda c: c + 1\n"
    "        for ctx in self.contexts:\n"
    "            self.cycles += 1\n"
    "            width = self.config.commit_width\n"
    "            stats = {{'ctx': ctx}}\n"
    "        return on_cycle(width), stats\n"
)


def test_hot_marked_function_flags_all_four():
    diags = lint_one(
        "core/smt.py", _HOT_BODY.format(marker="# codelint: hot-loop")
    )
    got = codes(diags)
    assert got == sorted(
        ["HOT-CLOSURE", "HOT-SELF-LOOP", "HOT-ATTR-CHAIN", "HOT-ALLOC"]
    ), got


def test_hot_unmarked_twin_is_clean():
    diags = lint_one("core/smt.py", _HOT_BODY.format(marker="# warm path"))
    assert [d for d in diags if d.code.startswith("HOT-")] == []


def test_hot_marker_found_atop_comment_block():
    # The marker may lead a multi-line comment block above the def, as
    # it does in core/smt.py.
    diags = lint_one(
        "core/smt.py",
        "# codelint: hot-loop — fused pipeline loop; see ROADMAP\n"
        "# (compiled-backend subset: flat locals only).\n"
        "def step(sim):\n"
        "    for ctx in sim.contexts:\n"
        "        probe = lambda: ctx\n"
        "    return probe\n",
    )
    assert codes(diags) == ["HOT-CLOSURE"]


def test_hot_hoisted_locals_are_clean():
    diags = lint_one(
        "core/smt.py",
        "class Sim:\n"
        "    # codelint: hot-loop\n"
        "    def step(self):\n"
        "        contexts = self.contexts\n"
        "        cycles = self.cycles\n"
        "        for ctx in contexts:\n"
        "            cycles += 1\n"
        "        self.cycles = cycles\n",
    )
    assert diags == []


# ------------------------------------------------------------- suppression


def test_line_suppression_by_code_and_family():
    base = (
        "import random\n"
        "def pick(items):\n"
        "    return random.choice(items){comment}\n"
    )
    assert lint_one("core/x.py", base.format(comment="")) != []
    for comment in (
        "  # codelint: disable=DET-RNG",
        "  # codelint: disable=DET",
        "  # codelint: disable=*",
        "  # codelint: disable=DET-RNG,HOT-ALLOC — rare path",
    ):
        assert lint_one("core/x.py", base.format(comment=comment)) == []


def test_line_suppression_does_not_hide_other_codes():
    diags = lint_one(
        "core/x.py",
        "import random\n"
        "def pick(items):\n"
        "    return random.choice(items)  # codelint: disable=DET-CLOCK\n",
    )
    assert codes(diags) == ["DET-RNG"]


def test_file_suppression():
    diags = lint_one(
        "core/x.py",
        "# codelint: disable-file=DET-RNG — seeded at process start\n"
        "import random\n"
        "def pick(items):\n"
        "    return random.choice(items)\n"
        "def when():\n"
        "    import time\n"
        "    return time.time()\n",
    )
    assert codes(diags) == ["DET-CLOCK"]  # only the named code is waived


# ---------------------------------------------------------------- baseline


_BASELINE_SRC = (
    "import random\n"
    "def pick(items):\n"
    "    return random.choice(items)\n"
    "def pick2(items):\n"
    "    return random.choice(items)\n"
)


def test_baseline_round_trip(tmp_path):
    files = {"core/x.py": codelint.SourceFile("core/x.py", _BASELINE_SRC)}
    diags = codelint.lint_files(files)
    assert codes(diags) == ["DET-RNG", "DET-RNG"]

    path = tmp_path / "baseline.json"
    codelint.save_baseline(str(path), diags, files)
    entries = codelint.load_baseline(str(path))
    assert len(entries) == 2

    new, matched, stale = codelint.apply_baseline(diags, files, entries)
    assert (codes(new), len(matched), stale) == ([], 2, [])


def test_baseline_is_a_multiset(tmp_path):
    # Both findings share (path, code, stripped content); one accepted
    # entry must absorb exactly one of them, not both.
    files = {"core/x.py": codelint.SourceFile("core/x.py", _BASELINE_SRC)}
    diags = codelint.lint_files(files)
    path = tmp_path / "baseline.json"
    codelint.save_baseline(str(path), diags[:1], files)
    new, matched, __ = codelint.apply_baseline(
        diags, files, codelint.load_baseline(str(path))
    )
    assert (len(new), len(matched)) == (1, 1)


def test_baseline_reports_stale_entries(tmp_path):
    files = {"core/x.py": codelint.SourceFile("core/x.py", _BASELINE_SRC)}
    diags = codelint.lint_files(files)
    path = tmp_path / "baseline.json"
    codelint.save_baseline(str(path), diags, files)
    clean_files = {"core/x.py": codelint.SourceFile("core/x.py", "X = 1\n")}
    new, matched, stale = codelint.apply_baseline(
        [], clean_files, codelint.load_baseline(str(path))
    )
    assert (new, matched, len(stale)) == ([], [], 2)
    assert all(e["code"] == "DET-RNG" for e in stale)


def test_missing_baseline_file_is_empty(tmp_path):
    assert codelint.load_baseline(str(tmp_path / "absent.json")) == []


# ---------------------------------------------------- registry / reporting


def test_catalog_covers_all_families_with_unique_codes():
    families = {c.family for c in codelint.CHECKERS}
    assert families == {"DET", "FPR", "HOOK", "POOL", "HOT"}
    seen = {}
    for chk in codelint.CHECKERS:
        for code in chk.codes:
            assert code not in seen, f"{code} in {chk.name} and {seen[code]}"
            seen[code] = chk.name
            assert code in codelint.CATALOG
            assert code.startswith(chk.family + "-")


def test_syntax_error_reported_not_raised():
    diags = lint_one("core/broken.py", "def f(:\n")
    assert codes(diags) == ["CL-SYNTAX"]


def test_json_report_shape():
    files = {"core/x.py": codelint.SourceFile("core/x.py", _BASELINE_SRC)}
    diags = codelint.lint_files(files)
    report = codelint.json_report(diags, files)
    assert report["files_scanned"] == 1
    assert report["summary"] == {"DET-RNG": 2}
    entry = report["diagnostics"][0]
    assert entry["path"] == "core/x.py"
    assert entry["code"] == "DET-RNG"
    assert entry["content"] == "return random.choice(items)"


# -------------------------------------------------------------- acceptance


def test_repository_lints_clean():
    """The tentpole acceptance criterion: zero findings, empty baseline."""
    diags, files = codelint.lint_repo(str(REPO_ROOT))
    assert len(files) > 50
    assert codes(diags) == []
    baseline = json.loads(
        (REPO_ROOT / codelint.BASELINE_NAME).read_text()
    )
    assert baseline == {"version": 1, "entries": []}


def test_verify_tool_lint_subcommand_exits_clean(tmp_path):
    report_path = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "scripts/verify_tool.py", "lint",
         "--json", str(report_path)],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(report_path.read_text())
    assert report["diagnostics"] == []
    assert report["files_scanned"] > 50
