"""Property-based tests of pipeline invariants (hypothesis).

Random mixes of instruction types are pushed through the full SMT
pipeline on perfect memory; whatever the mix, fundamental invariants must
hold: everything fetched eventually commits exactly once, in per-thread
program order, within structural throughput bounds, deterministically.
"""

from hypothesis import given, settings, strategies as st

from repro.core import SMTConfig, SMTProcessor
from repro.core.smt import ThreadContext
from repro.memory import PerfectMemory
from repro.tracegen.builder import TraceBuilder
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.program import Trace

OP_KINDS = ("int", "mul", "fp", "load", "store", "branch", "mmx", "mmx_load")


def build_random_trace(kinds, seed, isa="mmx") -> Trace:
    builder = TraceBuilder(isa, seed=seed)
    body = builder.alloc_code(64)
    for i, kind in enumerate(kinds):
        pc = body + 4 * (i % 63)
        if kind == "int":
            builder.int_op(pc=pc)
        elif kind == "mul":
            builder.int_op(mul=True, pc=pc)
        elif kind == "fp":
            builder.fp_op(pc=pc)
        elif kind == "load":
            builder.load(0x10000 + 8 * (i % 128), pc=pc)
        elif kind == "store":
            builder.store(0x20000 + 8 * (i % 128), pc=pc)
        elif kind == "branch":
            builder.branch(taken=(i % 3 == 0), target=body, pc=body + 252)
        elif kind == "mmx":
            builder.mmx_op(pc=pc)
        elif kind == "mmx_load":
            builder.mmx_load(0x30000 + 8 * (i % 64), pc=pc)
    return Trace(
        name="random",
        isa=isa,
        instructions=builder.instructions,
        mmx_equivalent=sum(x.stream_length for x in builder.instructions),
        mix=WORKLOAD_MIXES["gsmdec"],
    )


def run_trace(trace, n_threads=1):
    processor = SMTProcessor(
        SMTConfig(isa=trace.isa, n_threads=n_threads),
        PerfectMemory(),
        [trace],
        completions_target=1,
        warmup_fraction=0.0,
        max_cycles=2_000_000,
    )
    return processor, processor.run()


kind_lists = st.lists(st.sampled_from(OP_KINDS), min_size=5, max_size=250)


class TestPipelineInvariants:
    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_everything_commits_exactly_once(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        __, result = run_trace(trace)
        assert result.committed_instructions == len(kinds)
        assert result.program_completions == 1

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_ipc_within_structural_bounds(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        __, result = run_trace(trace)
        # Fetch delivers at most 8/cycle; nothing can commit faster.
        assert result.ipc <= 8.0
        assert result.cycles >= len(kinds) / 8

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_replay(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        __, first = run_trace(trace)
        __, second = run_trace(trace)
        assert first.cycles == second.cycles
        assert first.committed_instructions == second.committed_instructions

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_no_state_leaks_after_completion(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        processor, __ = run_trace(trace)
        # Every structural resource returns to its initial level.
        assert processor.window.occupancy == 0
        for queue in processor.queues.values():
            assert queue.occupancy == 0
        expected = processor.config.resources.rename_regs
        assert processor.pools == dict(expected)
        assert not processor._wake

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_serial_chain_is_upper_bounded_by_chain_length(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        __, result = run_trace(trace)
        # Even a fully serial chain finishes in O(n * max_latency) cycles:
        # a loose sanity ceiling that catches runaway stalls.
        assert result.cycles < 40 * len(kinds) + 500


class TestThreadContext:
    def test_assign_resets_state(self):
        trace = build_random_trace(["int"] * 10, seed=1)
        ctx = ThreadContext(0)
        ctx.fetch_idx = 5
        ctx.fetch_blocked = True
        ctx.assign(trace)
        assert ctx.fetch_idx == 0
        assert not ctx.fetch_blocked
        assert ctx.trace is trace
        assert ctx.equiv_per_inst == 1.0
