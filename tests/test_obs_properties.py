"""Property-based tests of the observability event-stream invariants.

Random instruction mixes run through the fully-observed pipeline; the
captured per-instruction records must satisfy the invariants
``validate_records`` enforces — stage ordering, per-thread monotone
fetch/commit cycles, no events after squash — and observation must never
change timing.  Seeded-defect negatives (the ``verify`` suites' style)
corrupt known-good record streams one invariant at a time and assert the
validator names the exact violation code.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SMTConfig, SMTProcessor
from repro.memory import PerfectMemory
from repro.obs import (
    InstRecord,
    ObservabilityError,
    PipelineObserver,
    parse_ascii,
    render_ascii,
    validate_records,
)
from tests.test_core_properties import OP_KINDS, build_random_trace

kind_lists = st.lists(st.sampled_from(OP_KINDS), min_size=5, max_size=250)


def run_observed_trace(trace, n_threads=1):
    observer = PipelineObserver()
    processor = SMTProcessor(
        SMTConfig(isa=trace.isa, n_threads=n_threads, observe=observer),
        PerfectMemory(),
        [trace] * n_threads,
        completions_target=n_threads,
        warmup_fraction=0.0,
        max_cycles=2_000_000,
    )
    return observer, processor.run()


class TestEventStreamInvariants:
    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_records_satisfy_all_invariants(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        observer, result = run_observed_trace(trace)
        assert validate_records(observer.records) == len(observer.records)
        committed = sum(1 for r in observer.records if r.committed)
        # Perfect memory, single program: every fetched instruction of
        # the completed program commits; records are per instruction.
        assert committed == len(kinds)

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_observation_does_not_change_timing(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        observer, observed = run_observed_trace(trace)
        plain = SMTProcessor(
            SMTConfig(isa=trace.isa),
            PerfectMemory(),
            [trace],
            completions_target=1,
            warmup_fraction=0.0,
            max_cycles=2_000_000,
        ).run()
        assert observed.cycles == plain.cycles
        assert observed.committed_instructions == plain.committed_instructions

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_two_thread_streams_interleave_legally(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        observer, __ = run_observed_trace(trace, n_threads=2)
        validate_records(observer.records)
        threads = {record.thread for record in observer.records}
        assert threads <= {0, 1}

    @given(kind_lists, st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_ascii_round_trip_is_lossless(self, kinds, seed):
        trace = build_random_trace(kinds, seed)
        observer, __ = run_observed_trace(trace)
        records = observer.records
        parsed = parse_ascii(render_ascii(records, max_width=1 << 22))
        assert len(parsed) == len(records)
        for original, restored in zip(records, parsed):
            for stage in ("fetch", "dispatch", "issue", "complete",
                          "commit", "squash"):
                assert getattr(original, stage) == getattr(restored, stage)


# ----- seeded defects: the validator catches exactly what broke -------------


def clean_records():
    records = []
    for uid in range(4):
        record = InstRecord(uid, 0, 0x100 + 4 * uid, 1, 1, 10 + uid, False)
        record.dispatch = 12 + uid
        record.issue = 14 + uid
        record.complete = 18 + uid
        record.commit = 20 + uid
        records.append(record)
    return records


def expect_violation(records, code):
    with pytest.raises(ObservabilityError) as excinfo:
        validate_records(records)
    assert excinfo.value.code == code
    assert excinfo.value.component == "events"
    assert excinfo.value.details
    return excinfo.value


def test_clean_stream_validates():
    assert validate_records(clean_records()) == 4


def test_defect_stage_order_issue_before_dispatch():
    records = clean_records()
    records[1].issue = records[1].dispatch - 1
    error = expect_violation(records, "OBS-STAGE-ORDER")
    assert error.details["stage"] == "issue"


def test_defect_commit_before_complete():
    records = clean_records()
    records[2].commit = records[2].complete - 1
    expect_violation(records, "OBS-STAGE-ORDER")


def test_defect_stage_gap():
    records = clean_records()
    records[0].issue = None          # later stages still set
    expect_violation(records, "OBS-STAGE-GAP")


def test_defect_missing_fetch():
    records = clean_records()
    records[3].fetch = None
    expect_violation(records, "OBS-NO-FETCH")


def test_defect_nonmonotone_fetch_order():
    records = clean_records()
    records[2].fetch = records[1].fetch - 2
    # Keep the record internally consistent so only ordering trips.
    expect_violation(records, "OBS-FETCH-ORDER")


def test_defect_nonmonotone_commit_order():
    records = clean_records()
    records[3].commit = records[2].commit - 2
    records[3].complete = records[3].commit
    records[3].issue = records[3].complete - 1
    records[3].dispatch = records[3].issue - 1
    records[3].fetch = records[2].fetch  # fetch order stays legal (ties ok)
    expect_violation(records, "OBS-COMMIT-ORDER")


def test_defect_commit_after_squash():
    records = clean_records()
    records[1].squash = records[1].complete
    expect_violation(records, "OBS-POST-SQUASH")


def test_defect_event_after_squash():
    records = clean_records()
    records[1].commit = None
    records[1].squash = records[1].issue
    # complete (set above) postdates the squash cycle.
    error = expect_violation(records, "OBS-POST-SQUASH")
    assert error.details["stage"] == "complete"


def test_defect_same_cycle_dispatch():
    records = clean_records()
    records[0].dispatch = records[0].fetch   # fetch < dispatch is strict
    expect_violation(records, "OBS-STAGE-ORDER")


def test_same_cycle_complete_commit_is_legal():
    records = clean_records()
    records[0].commit = records[0].complete
    assert validate_records(records) == 4
