"""Tests for motion estimation, filters, GSM and entropy-coding kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.blockmatch import (
    full_search,
    motion_compensate,
    sad_block,
    sad_block_mmx,
    sad_block_packed,
    three_step_search,
)
from repro.kernels.fir import fir_filter, fir_filter_packed, iir_biquad
from repro.kernels.gsm import (
    LPC_ORDER,
    autocorrelation,
    ltp_search,
    ltp_search_packed,
    preprocess,
    reflection_coefficients,
    synthesize,
)
from repro.kernels.jpeg import (
    HuffmanCodec,
    ZIGZAG_ORDER,
    inverse_zigzag,
    rle_decode,
    rle_encode,
    zigzag,
)

rng = np.random.default_rng(7)


class TestSad:
    def test_sad_zero_for_identical(self):
        block = rng.integers(0, 256, (16, 16))
        assert sad_block(block, block) == 0

    def test_sad_matches_packed_and_mmx(self):
        a = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        b = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        reference = sad_block(a, b)
        assert sad_block_packed(a, b) == reference
        assert sad_block_mmx(a, b) == reference

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_sad_triangle_inequality(self, seed):
        r = np.random.default_rng(seed)
        a = r.integers(0, 256, (8, 8))
        b = r.integers(0, 256, (8, 8))
        c = r.integers(0, 256, (8, 8))
        assert sad_block(a, c) <= sad_block(a, b) + sad_block(b, c)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sad_block(np.zeros((8, 8)), np.zeros((16, 16)))


class TestMotionSearch:
    def _shifted_frames(self, dy, dx):
        reference = rng.integers(0, 256, (64, 64))
        current = np.roll(np.roll(reference, dy, axis=0), dx, axis=1)
        return current, reference

    def test_full_search_recovers_known_shift(self):
        # np.roll(ref, +2) moves content down: current[y] == ref[y-2], so
        # the best match lies at displacement (-2, +3).
        current, reference = self._shifted_frames(2, -3)
        (dy, dx), sad = full_search(current, reference, 16, 16, search_range=4)
        assert (dy, dx) == (-2, 3)
        assert sad == 0

    def test_full_search_zero_motion(self):
        frame = rng.integers(0, 256, (32, 32))
        (dy, dx), sad = full_search(frame, frame, 8, 8, search_range=3)
        assert (dy, dx) == (0, 0) and sad == 0

    def test_three_step_finds_good_match(self):
        current, reference = self._shifted_frames(1, 2)
        __, sad_tss = three_step_search(current, reference, 16, 16)
        __, sad_full = full_search(current, reference, 16, 16, search_range=7)
        assert sad_tss >= sad_full           # full search is optimal
        assert sad_full == 0

    def test_motion_compensate_reconstructs_shift(self):
        current, reference = self._shifted_frames(0, 1)
        vectors = {}
        for by in range(16, 32, 16):
            for bx in range(16, 32, 16):
                vectors[(by, bx)], __ = full_search(
                    current, reference, by, bx, search_range=2
                )
        predicted = motion_compensate(reference, vectors)
        region = predicted[16:32, 16:32]
        assert np.array_equal(region, current[16:32, 16:32])


class TestFilters:
    def test_fir_impulse_response_is_taps(self):
        taps = [1000, 2000, 3000]
        impulse = np.zeros(8)
        impulse[0] = 1 << 15
        out = fir_filter(impulse, taps, shift=15)
        assert list(out[:3]) == taps

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_fir_packed_matches_scalar(self, seed):
        r = np.random.default_rng(seed)
        samples = r.integers(-2000, 2000, 40)
        taps = r.integers(-10000, 10000, r.integers(1, 9))
        assert np.array_equal(
            fir_filter(samples, taps), fir_filter_packed(samples, taps)
        )

    def test_fir_output_saturated_to_16_bits(self):
        samples = np.full(10, 32767)
        taps = [32767, 32767, 32767, 32767]
        out = fir_filter(samples, taps, shift=0)
        assert out.max() <= 32767

    def test_biquad_passthrough(self):
        samples = rng.integers(-1000, 1000, 32)
        out = iir_biquad(samples, (1 << 14, 0, 0), (0, 0), shift=14)
        assert np.array_equal(out, samples)

    def test_biquad_is_stateful_lowpass(self):
        # Simple averaging biquad attenuates an alternating signal.
        alternating = np.array([1000, -1000] * 32)
        out = iir_biquad(alternating, (4096, 8192, 4096), (0, 0), shift=14)
        assert np.abs(out[4:]).max() < 200


class TestGsm:
    def test_preprocess_removes_dc(self):
        # The offset-compensation pole is at 32735/32768, so the DC step
        # decays with a ~1000-sample time constant.
        samples = np.full(4000, 1200)
        out = preprocess(samples)
        assert abs(int(out[-40:].mean())) < 60

    def test_autocorrelation_r0_is_energy(self):
        samples = rng.integers(-1000, 1000, 160)
        acf = autocorrelation(samples)
        assert acf[0] == int(np.dot(samples, samples))
        assert len(acf) == LPC_ORDER + 1

    def test_autocorrelation_peak_at_zero_lag(self):
        samples = rng.integers(-1000, 1000, 160)
        acf = autocorrelation(samples)
        assert acf[0] >= np.abs(acf[1:]).max()

    def test_reflection_coefficients_bounded(self):
        samples = rng.integers(-1000, 1000, 160)
        refl = reflection_coefficients(autocorrelation(samples))
        assert np.all(np.abs(refl) < 1.0)

    def test_reflection_of_silence_is_zero(self):
        assert np.all(reflection_coefficients(np.zeros(9)) == 0)

    def test_ltp_search_finds_periodic_lag(self):
        period = 55
        n = 300
        wave = (1000 * np.sin(2 * np.pi * np.arange(n) / period)).astype(int)
        sub = wave[-40:]
        lag, __ = ltp_search(sub, wave)
        assert lag % period in (0, period - 1, 1) or abs(lag - period) <= 1

    def test_ltp_packed_matches_scalar(self):
        history = rng.integers(-3000, 3000, 240)
        sub = history[-40:]
        assert ltp_search(sub, history)[0] == ltp_search_packed(sub, history)[0]

    def test_synthesize_zero_reflection_identity(self):
        residual = rng.integers(-100, 100, 80).astype(float)
        out = synthesize(residual, np.zeros(8))
        assert np.allclose(out, residual)


class TestEntropy:
    def test_zigzag_order_covers_all_positions(self):
        assert sorted(ZIGZAG_ORDER) == [(y, x) for y in range(8) for x in range(8)]

    def test_zigzag_roundtrip(self):
        block = rng.integers(-100, 100, (8, 8))
        assert np.array_equal(inverse_zigzag(zigzag(block)), block)

    def test_zigzag_starts_dc_then_neighbours(self):
        assert ZIGZAG_ORDER[0] == (0, 0)
        assert set(ZIGZAG_ORDER[1:3]) == {(0, 1), (1, 0)}

    @given(st.lists(st.integers(-255, 255), min_size=64, max_size=64))
    @settings(max_examples=30)
    def test_rle_roundtrip(self, values):
        flat = np.array(values)
        assert np.array_equal(rle_decode(rle_encode(flat)), flat)

    def test_rle_long_zero_runs_use_zrl(self):
        flat = np.zeros(64, dtype=np.int64)
        flat[40] = 5
        pairs = rle_encode(flat)
        assert (15, 0) in pairs           # ZRL symbols for the 40-zero run
        assert pairs[-1] == (0, 0)

    def test_huffman_roundtrip(self):
        symbols = [1, 1, 1, 2, 2, 3, 4, 4, 4, 4]
        codec = HuffmanCodec.from_symbols(symbols)
        bits = codec.encode(symbols)
        assert codec.decode(bits) == symbols

    def test_huffman_frequent_symbols_shorter(self):
        symbols = [0] * 100 + [1] * 10 + [2]
        codec = HuffmanCodec.from_symbols(symbols)
        assert len(codec.code[0]) <= len(codec.code[1]) <= len(codec.code[2])

    def test_huffman_single_symbol(self):
        codec = HuffmanCodec.from_symbols(["x"])
        assert codec.decode(codec.encode(["x", "x"])) == ["x", "x"]

    def test_huffman_rejects_dangling_prefix(self):
        codec = HuffmanCodec.from_symbols([1, 1, 1, 2, 2, 3])
        longest = max(codec.code.values(), key=len)
        assert len(longest) >= 2
        # A proper prefix of a codeword is an internal tree node, never a
        # complete symbol — decoding must reject the dangling bits.
        with pytest.raises(ValueError):
            codec.decode(codec.encode([1, 2, 3]) + longest[:-1])

    def test_mean_code_length_beats_fixed_for_skewed(self):
        freqs = {0: 90, 1: 5, 2: 3, 3: 2}
        codec = HuffmanCodec(freqs)
        assert codec.mean_code_length(freqs) < 2.0
