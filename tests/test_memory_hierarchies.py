"""Integration tests for the cache hierarchies and address translation."""

import pytest

from repro.memory import (
    ConventionalHierarchy,
    DecoupledHierarchy,
    PerfectMemory,
)
from repro.memory.cache import CacheConfig, L1_DATA, L1_INST, L2_UNIFIED
from repro.memory.interface import AccessType as AT, physical_address


class TestPaperGeometry:
    def test_l1_is_32k_direct_mapped(self):
        assert L1_DATA.size == 32 << 10
        assert L1_DATA.assoc == 1
        assert L1_DATA.line == 32
        assert L1_DATA.banks == 8
        assert L1_DATA.latency == 1

    def test_icache_is_64k_two_way(self):
        assert L1_INST.size == 64 << 10
        assert L1_INST.assoc == 2
        assert L1_INST.banks == 4

    def test_l2_is_1m_two_way_12_cycles(self):
        assert L2_UNIFIED.size == 1 << 20
        assert L2_UNIFIED.assoc == 2
        assert L2_UNIFIED.line == 128
        assert L2_UNIFIED.latency == 12

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size=1000, assoc=1, line=32, banks=1, latency=1)
        with pytest.raises(ValueError):
            CacheConfig("bad", size=1024, assoc=1, line=48, banks=1, latency=1)


class TestPhysicalAddress:
    def test_offset_preserved(self):
        phys = physical_address(0, 0x12345)
        assert phys & 0xFFF == 0x345

    def test_deterministic(self):
        assert physical_address(3, 0x1000) == physical_address(3, 0x1000)

    def test_threads_get_distinct_mappings(self):
        pages = {physical_address(t, 0x100000) >> 12 for t in range(8)}
        assert len(pages) == 8

    def test_power_of_two_bases_get_distinct_colors(self):
        # Regression: the hash must not map power-of-two region bases all
        # onto the same L1 page colour (bits 12..14 of the physical addr).
        bases = [0x0100_0000, 0x0200_0000, 0x0300_0000, 0x1000_0000,
                 0x1100_0000, 0x1200_0000]
        colors = {(physical_address(0, b) >> 12) & 7 for b in bases}
        assert len(colors) >= 3


class TestPerfectMemory:
    def test_always_one_cycle(self):
        m = PerfectMemory()
        assert m.access(0, 0x1234, AT.SCALAR_LOAD, 10) == 11
        assert m.fetch(0, 0x1000, 10) == 11

    def test_stream_limited_by_ports(self):
        m = PerfectMemory()
        done = m.access_stream(0, 0x1000, 8, 16, AT.VECTOR_LOAD, 0)
        assert done == 4                  # 16 elements / 4 ports

    def test_stats_report_full_hits(self):
        m = PerfectMemory()
        m.access(0, 0, AT.SCALAR_LOAD, 0)
        assert m.stats.l1.hit_rate == 1.0


class TestConventionalHierarchy:
    def test_miss_then_hit_latency(self):
        m = ConventionalHierarchy()
        first = m.access(0, 0x5000, AT.SCALAR_LOAD, 0)
        second = m.access(0, 0x5000, AT.SCALAR_LOAD, first)
        assert first > 12                 # had to go at least to L2
        assert second - first <= 2        # L1 hit
        assert m.stats.l1.accesses == 2
        assert m.stats.l1.hits == 1

    def test_l2_hit_faster_than_dram(self):
        m = ConventionalHierarchy()
        cold = m.access(0, 0x9000, AT.SCALAR_LOAD, 0)
        # Same 128-byte L2 line, different 32-byte L1 line:
        l2_hit = m.access(0, 0x9000 + 32, AT.SCALAR_LOAD, cold)
        assert cold - 0 > 60              # DRAM latency
        assert l2_hit - cold < 30

    def test_stores_not_counted_in_l1_hit_stats(self):
        m = ConventionalHierarchy()
        m.access(0, 0x100, AT.SCALAR_STORE, 0)
        assert m.stats.l1.accesses == 0

    def test_stream_coalesces_unit_stride_per_line(self):
        m = ConventionalHierarchy()
        m.access_stream(0, 0x4000, 8, 16, AT.VECTOR_LOAD, 0)
        # 16 x 8B unit stride = 128B = 4 L1 lines -> 4 L2 refills at most.
        assert m.stats.l1.accesses == 16  # stats count elements
        assert m.stats.l2.accesses <= 4

    def test_strided_stream_touches_more_lines(self):
        m = ConventionalHierarchy()
        m.access_stream(0, 0x40000, 64, 16, AT.VECTOR_LOAD, 0)
        assert m.stats.l2.accesses >= 8   # 64-byte stride: line per element x2

    def test_bank_conflicts_counted(self):
        m = ConventionalHierarchy()
        # Hammer one bank: same line repeatedly in the same cycle.
        for __ in range(8):
            m.access(0, 0x8000, AT.SCALAR_LOAD, 0)
        assert m.stats.bank_conflict_cycles > 0

    def test_reset_stats_preserves_cache_state(self):
        m = ConventionalHierarchy()
        done = m.access(0, 0x5000, AT.SCALAR_LOAD, 0)
        m.reset_stats()
        assert m.stats.l1.accesses == 0
        second = m.access(0, 0x5000, AT.SCALAR_LOAD, done)
        assert m.stats.l1.hits == 1       # still cached after reset

    def test_fetch_counts_icache(self):
        m = ConventionalHierarchy()
        fill = m.fetch(0, 0x1000, 0)
        done = m.fetch(0, 0x1000, fill + 100)
        assert m.stats.icache.accesses == 2
        assert m.stats.icache.hits == 1
        assert done == fill + 101


class TestDecoupledHierarchy:
    def test_vector_access_bypasses_l1(self):
        m = DecoupledHierarchy()
        m.access(0, 0x7000, AT.VECTOR_LOAD, 0)
        assert m.stats.l1.accesses == 0
        assert m.stats.l2.accesses == 1

    def test_scalar_access_uses_l1(self):
        m = DecoupledHierarchy()
        m.access(0, 0x7000, AT.SCALAR_LOAD, 0)
        assert m.stats.l1.accesses == 1

    def test_vector_stream_one_l2_access_per_line(self):
        m = DecoupledHierarchy()
        m.access_stream(0, 0x7000, 8, 16, AT.VECTOR_LOAD, 0)
        assert m.stats.l2.accesses == 1   # 128B = one L2 line

    def test_exclusive_bit_invalidates_l1_copy(self):
        m = DecoupledHierarchy()
        done = m.access(0, 0x7000, AT.SCALAR_LOAD, 0)     # L1 fill
        m.access(0, 0x7000, AT.VECTOR_LOAD, done)          # stream touch
        assert m.stats.coherence_invalidations == 1
        # The scalar copy is gone: next scalar access misses L1.
        before = m.stats.l1.hits
        m.access(0, 0x7000, AT.SCALAR_LOAD, done + 100)
        assert m.stats.l1.hits == before

    def test_no_invalidation_when_not_resident(self):
        m = DecoupledHierarchy()
        m.access(0, 0x9000, AT.VECTOR_LOAD, 0)
        assert m.stats.coherence_invalidations == 0

    def test_vector_store_marks_l2_dirty_writeback(self):
        m = DecoupledHierarchy()
        m.access(0, 0xA000, AT.VECTOR_STORE, 0)
        dram_before = m.dram.accesses
        # Evict by filling both ways of the set with other lines.
        sets = m.l2.config.n_sets
        line_bytes = m.l2.config.line
        for way in range(1, 3):
            conflict = 0xA000 + way * sets * line_bytes
            m.access(0, conflict, AT.VECTOR_LOAD, 1000 * way)
        assert m.dram.accesses > dram_before + 1   # refills + dirty writeback

    def test_vector_hit_costs_l2_latency(self):
        m = DecoupledHierarchy()
        first = m.access(0, 0xB000, AT.VECTOR_LOAD, 0)
        second = m.access(0, 0xB000, AT.VECTOR_LOAD, first)
        assert second - first >= 12       # L2 latency even on a hit
