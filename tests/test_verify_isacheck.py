"""ISA cross-validation: the seed tables pass; seeded drift is caught."""

import dataclasses

from repro.isa.mmx import MMX_OPCODES
from repro.isa.mom import MOM_OPCODES
from repro.verify import isacheck
from repro.verify.isacheck import (
    check_classes,
    check_counts,
    check_isa,
    check_semantics,
    check_signatures,
    mom_base_mnemonic,
)


def codes(findings):
    return {d.code for d in findings}


# ----- the seed repository is clean -----------------------------------------


def test_seed_tables_pass_every_check():
    findings = check_isa()
    assert findings == [], [str(d) for d in findings]


def test_paper_opcode_counts_hold():
    assert len(MMX_OPCODES) == 67
    assert len(MOM_OPCODES) == 121
    assert check_counts() == []


def test_mom_base_mnemonic_handles_pack_forms():
    # Plain element-wise ops gain the MMX "p" prefix; pack/unpack forms
    # already carry it.
    assert mom_base_mnemonic("vaddw") == "paddw"
    assert mom_base_mnemonic("vpacksswb") == "packsswb"
    assert mom_base_mnemonic("vpunpcklbw") == "punpcklbw"


# ----- seeded drift (patch module globals, never the live tables) -----------


def test_count_drift_is_reported(monkeypatch):
    shrunk = dict(MMX_OPCODES)
    shrunk.pop("paddw")
    monkeypatch.setattr(isacheck, "MMX_OPCODES", shrunk)
    findings = check_counts()
    assert "ISA-COUNT" in codes(findings)


def test_cross_table_duplicate_is_reported(monkeypatch):
    collided = dict(MOM_OPCODES)
    collided["paddw"] = MMX_OPCODES["paddw"]
    monkeypatch.setattr(isacheck, "MOM_OPCODES", collided)
    findings = check_counts()
    assert "ISA-DUP" in codes(findings)


def test_foreign_class_is_reported(monkeypatch):
    spec = MMX_OPCODES["paddw"]
    drifted = dict(MMX_OPCODES)
    drifted["paddw"] = dataclasses.replace(
        spec, sim_class=MOM_OPCODES["vaddw"].sim_class
    )
    monkeypatch.setattr(isacheck, "MMX_OPCODES", drifted)
    findings = check_classes()
    assert "ISA-FAMILY" in codes(findings)


def test_orphan_mnemonic_is_reported(monkeypatch):
    spec = MMX_OPCODES["paddw"]
    drifted = dict(MMX_OPCODES)
    drifted["pbogus"] = dataclasses.replace(spec, mnemonic="pbogus")
    monkeypatch.setattr(isacheck, "MMX_OPCODES", drifted)
    findings = check_semantics()
    assert "ISA-ORPHAN" in codes(findings)


def test_stale_timing_only_entry_is_reported(monkeypatch):
    # vaddw reaches paddw through the generic path, so documenting it as
    # timing-only would be stale.
    monkeypatch.setattr(
        isacheck,
        "TIMING_ONLY_MNEMONICS",
        isacheck.TIMING_ONLY_MNEMONICS | {"vaddw"},
    )
    findings = check_semantics()
    assert "ISA-STALE-TIMING-ONLY" in codes(findings)


def test_stale_set_member_is_reported(monkeypatch):
    monkeypatch.setattr(
        isacheck,
        "TIMING_ONLY_MNEMONICS",
        isacheck.TIMING_ONLY_MNEMONICS | {"vnotanop"},
    )
    findings = check_semantics()
    assert "ISA-STALE-SET" in codes(findings)


def test_missing_signature_is_reported(monkeypatch):
    spec = MOM_OPCODES["vaddw"]
    drifted = dict(MOM_OPCODES)
    drifted["vnosig"] = dataclasses.replace(spec, mnemonic="vnosig")
    monkeypatch.setattr(isacheck, "MOM_OPCODES", drifted)
    findings = check_signatures()
    assert "ISA-NO-SIGNATURE" in codes(findings)
