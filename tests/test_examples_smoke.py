"""Smoke tests: every example script runs end to end.

Each example is imported as a module, its trace scale patched down so
the suite stays fast, and its ``main()`` executed.  Output content is
not asserted beyond a few anchors — these tests exist so a public-API
change that breaks an example breaks the suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
FAST_SCALE = 1.2e-5


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "fetch_policy_study",
        "decoupled_cache_study",
        "cmp_vs_smt",
        "custom_workload",
        "pipeline_report",
    ],
)
def test_simulation_examples_run(name, capsys):
    module = load_example(name)
    assert hasattr(module, "SCALE")
    module.SCALE = FAST_SCALE
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100


def test_mpeg2_pipeline_example(capsys):
    module = load_example("mpeg2_pipeline")
    module.encode_decode()
    module.packed_sad_demo()
    out = capsys.readouterr().out
    assert "PSNR" in out
    assert "MOM vsadab" in out


def test_mom_assembly_example(capsys):
    module = load_example("mom_assembly")
    module.main()
    out = capsys.readouterr().out
    assert "dot product" in out
    assert "SAD" in out


def test_media_codecs_example(capsys):
    module = load_example("media_codecs")
    module.jpeg_demo()
    module.gsm_demo()
    out = capsys.readouterr().out
    assert "JPEG" in out and "GSM" in out
