"""Tests for the kernel assembly generators (MOM vs MMX, executable)."""

import numpy as np
import pytest

from repro.isa.codegen import (
    instruction_counts,
    mmx_dot_product,
    mmx_saturating_add,
    mom_dot_product,
    mom_sad,
    mom_saturating_add,
)
from repro.isa.datatypes import ElementType as ET, pack_lanes, unpack_lanes
from repro.isa.machine import MediaMachine

rng = np.random.default_rng(13)


def load_i16(machine, base, values):
    for i in range(0, len(values), 4):
        quad = [int(v) for v in values[i : i + 4]]
        machine.memory.write(base + i * 2, pack_lanes(quad, ET.INT16), 8)


def load_u8(machine, base, values):
    for i in range(0, len(values), 8):
        octet = [int(v) for v in values[i : i + 8]]
        machine.memory.write(base + i, pack_lanes(octet, ET.UINT8), 8)


def read_i16(machine, base, count):
    out = []
    for i in range(0, count, 4):
        out.extend(unpack_lanes(machine.memory.read(base + i * 2, 8), ET.INT16))
    return out


class TestDotProduct:
    @pytest.mark.parametrize("n", [64, 128, 256])
    def test_mom_matches_numpy(self, n):
        a = rng.integers(-200, 200, n)
        b = rng.integers(-200, 200, n)
        machine = MediaMachine()
        load_i16(machine, 0x1000, a)
        load_i16(machine, 0x9000, b)
        machine = mom_dot_product(0x1000, 0x9000, n).run(machine)
        assert machine.acc[0].total() == int(np.dot(a, b))

    def test_mmx_matches_numpy_after_fold(self):
        n = 64
        a = rng.integers(-200, 200, n)
        b = rng.integers(-200, 200, n)
        machine = MediaMachine()
        load_i16(machine, 0x1000, a)
        load_i16(machine, 0x9000, b)
        machine = mmx_dot_product(0x1000, 0x9000, n).run(machine)
        lanes = unpack_lanes(machine.mm[0], ET.INT32)
        assert sum(lanes) == int(np.dot(a, b))

    def test_both_isas_agree(self):
        n = 128
        a = rng.integers(-500, 500, n)
        b = rng.integers(-500, 500, n)
        mom_m, mmx_m = MediaMachine(), MediaMachine()
        for m in (mom_m, mmx_m):
            load_i16(m, 0x1000, a)
            load_i16(m, 0x9000, b)
        mom_dot_product(0x1000, 0x9000, n).run(mom_m)
        mmx_dot_product(0x1000, 0x9000, n).run(mmx_m)
        assert mom_m.acc[0].total() == sum(
            unpack_lanes(mmx_m.mm[0], ET.INT32)
        )

    def test_instruction_count_ratio(self):
        counts = instruction_counts(256)
        # The paper's bandwidth argument: an order of magnitude fewer
        # instructions under the streaming ISA for the same work.
        assert counts["mmx"] > 5 * counts["mom"]

    def test_length_validated(self):
        with pytest.raises(ValueError):
            mom_dot_product(0, 0x100, 63)
        with pytest.raises(ValueError):
            mmx_dot_product(0, 0x100, 3)


class TestSad:
    def test_matches_numpy(self):
        n = 128
        a = rng.integers(0, 256, n)
        b = rng.integers(0, 256, n)
        machine = MediaMachine()
        load_u8(machine, 0x1000, a)
        load_u8(machine, 0x9000, b)
        machine = mom_sad(0x1000, 0x9000, n).run(machine)
        assert machine.acc[1].lanes[0] == int(np.abs(a - b).sum())


class TestSaturatingAdd:
    @pytest.mark.parametrize("generator", [mom_saturating_add, mmx_saturating_add])
    def test_matches_reference(self, generator):
        n = 64
        a = rng.integers(-30000, 30000, n)
        b = rng.integers(-30000, 30000, n)
        machine = MediaMachine()
        load_i16(machine, 0x1000, a)
        load_i16(machine, 0x9000, b)
        generator(0x1000, 0x9000, 0x5000, n).run(machine)
        got = read_i16(machine, 0x5000, n)
        expected = np.clip(a + b, -32768, 32767)
        assert got == [int(v) for v in expected]

    def test_isas_produce_identical_memory(self):
        n = 64
        a = rng.integers(-30000, 30000, n)
        b = rng.integers(-30000, 30000, n)
        outs = []
        for generator in (mom_saturating_add, mmx_saturating_add):
            machine = MediaMachine()
            load_i16(machine, 0x1000, a)
            load_i16(machine, 0x9000, b)
            generator(0x1000, 0x9000, 0x5000, n).run(machine)
            outs.append(read_i16(machine, 0x5000, n))
        assert outs[0] == outs[1]
