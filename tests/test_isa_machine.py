"""Tests for the architectural machine and the assembler.

The key property: kernels written in MOM assembly produce bit-identical
results to the Python reference kernels — the ISA tables are executable.
"""

import numpy as np
import pytest

from repro.isa.assembler import AssemblerError, Program, assemble, disassemble
from repro.isa.datatypes import ElementType as ET, pack_lanes, unpack_lanes
from repro.isa.machine import ByteMemory, MediaMachine

rng = np.random.default_rng(9)


def load_i16(machine, base, values):
    for i in range(0, len(values), 4):
        quad = [int(v) for v in values[i : i + 4]]
        machine.memory.write(base + i * 2, pack_lanes(quad, ET.INT16), 8)


def load_u8(machine, base, values):
    for i in range(0, len(values), 8):
        octet = [int(v) for v in values[i : i + 8]]
        machine.memory.write(base + i, pack_lanes(octet, ET.UINT8), 8)


class TestByteMemory:
    def test_roundtrip(self):
        mem = ByteMemory()
        mem.write(0x100, 0x1122334455667788, 8)
        assert mem.read(0x100, 8) == 0x1122334455667788

    def test_little_endian(self):
        mem = ByteMemory()
        mem.write(0, 0x0102, 2)
        assert mem.read(0, 1) == 0x02
        assert mem.read(1, 1) == 0x01

    def test_uninitialized_reads_zero(self):
        assert ByteMemory().read(0x5000, 8) == 0

    def test_negative_value_masked(self):
        mem = ByteMemory()
        mem.write(0, -1, 4)
        assert mem.read(0, 4) == 0xFFFFFFFF

    def test_word_helpers(self):
        mem = ByteMemory()
        mem.write_words(0x40, [1, 2, 3], stride=16)
        assert mem.read_words(0x40, 3, stride=16) == [1, 2, 3]


class TestScalarExecution:
    def test_arithmetic(self):
        prog = assemble(
            """
            li r1, 7
            li r2, 5
            add r3, r1, r2
            sub r4, r1, r2
            mul r5, r1, r2
            """
        )
        m = prog.run()
        assert (m.r[3], m.r[4], m.r[5]) == (12, 2, 35)

    def test_load_store(self):
        prog = assemble(
            """
            li r1, 0x1000
            li r2, 99
            st r2, r1, 8
            ld r3, r1, 8
            """
        )
        m = prog.run()
        assert m.r[3] == 99

    def test_loop_counts(self):
        prog = assemble(
            """
            li r1, 0
            li r2, 5
            top:
            addi r1, r1, 2
            loop r2, top
            """
        )
        assert prog.run().r[1] == 10

    def test_runaway_guard(self):
        prog = assemble(
            """
            li r1, 1
            forever:
            jmp forever
            """
        )
        with pytest.raises(RuntimeError):
            prog.run(max_steps=100)

    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError):
            assemble("frobnicate r1, r2").run()


class TestMmxExecution:
    def test_packed_add_via_assembly(self):
        m = MediaMachine()
        m.mm[1] = pack_lanes([1, 2, 3, 4], ET.INT16)
        m.mm[2] = pack_lanes([10, 20, 30, 40], ET.INT16)
        assemble("paddw mm0, mm1, mm2").run(m)
        assert unpack_lanes(m.mm[0], ET.INT16) == [11, 22, 33, 44]

    def test_movq_roundtrip(self):
        m = MediaMachine()
        m.mm[3] = 0xDEADBEEFCAFEF00D
        assemble(
            """
            li r1, 0x2000
            movq_st mm3, r1, 0
            movq_ld mm4, r1, 0
            """
        ).run(m)
        assert m.mm[4] == 0xDEADBEEFCAFEF00D

    def test_shift_with_immediate(self):
        m = MediaMachine()
        m.mm[1] = pack_lanes([4, 8, 16, 32], ET.UINT16)
        assemble("psrlw mm0, mm1, 2").run(m)
        assert unpack_lanes(m.mm[0], ET.UINT16) == [1, 2, 4, 8]

    def test_three_source(self):
        m = MediaMachine()
        m.mm[1] = 0xFFFF0000FFFF0000
        m.mm[2] = pack_lanes([1, 2, 3, 4], ET.INT16)
        m.mm[3] = pack_lanes([9, 9, 9, 9], ET.INT16)
        assemble("pselect mm0, mm1, mm2, mm3").run(m)
        assert unpack_lanes(m.mm[0], ET.INT16) == [9, 2, 9, 4]


class TestMomExecution:
    def test_stream_add_elementwise(self):
        m = MediaMachine()
        xs = rng.integers(-1000, 1000, 32)
        ys = rng.integers(-1000, 1000, 32)
        load_i16(m, 0x1000, xs)
        load_i16(m, 0x2000, ys)
        assemble(
            """
            li r1, 0x1000
            li r2, 0x2000
            li r3, 0x3000
            setslri 8
            vldq v0, r1, 0, 8
            vldq v1, r2, 0, 8
            vaddw v2, v0, v1
            vstq v2, r3, 0, 8
            """
        ).run(m)
        got = []
        for i in range(8):
            got.extend(unpack_lanes(m.memory.read(0x3000 + 8 * i, 8), ET.INT16))
        assert got == [int(x + y) for x, y in zip(xs, ys)]

    def test_strided_stream_load(self):
        m = MediaMachine()
        for i in range(8):
            m.memory.write(0x1000 + 32 * i, i + 1, 8)   # stride 32
        assemble(
            """
            li r1, 0x1000
            setslri 8
            vldq v0, r1, 0, 32
            """
        ).run(m)
        assert m.v[0][:8] == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_dot_product_matches_numpy(self):
        m = MediaMachine()
        a = rng.integers(-100, 100, 64)
        b = rng.integers(-100, 100, 64)
        load_i16(m, 0x1000, a)
        load_i16(m, 0x2000, b)
        assemble(
            """
            li r1, 0x1000
            li r2, 0x2000
            setslri 16
            vclracc a0
            vldq v0, r1, 0, 8
            vldq v1, r2, 0, 8
            vmaddawd a0, v0, v1
            """
        ).run(m)
        assert m.acc[0].total() == int(np.dot(a, b))

    def test_sad_matches_kernel(self):
        from repro.kernels.blockmatch import sad_block

        m = MediaMachine()
        cur = rng.integers(0, 256, 128)
        ref = rng.integers(0, 256, 128)
        load_u8(m, 0x1000, cur)
        load_u8(m, 0x2000, ref)
        assemble(
            """
            li r1, 0x1000
            li r2, 0x2000
            setslri 16
            vclracc a1
            vldq v0, r1, 0, 8
            vldq v1, r2, 0, 8
            vsadab a1, v0, v1
            """
        ).run(m)
        expected = sad_block(cur.reshape(8, 16), ref.reshape(8, 16))
        assert m.acc[1].lanes[0] == expected

    def test_slr_respected(self):
        m = MediaMachine()
        for i in range(16):
            m.memory.write(0x1000 + 8 * i, i, 8)
        m.v[0] = [77] * 16
        assemble(
            """
            li r1, 0x1000
            setslri 4
            vldq v0, r1, 0, 8
            """
        ).run(m)
        assert m.v[0][:4] == [0, 1, 2, 3]
        assert m.v[0][4] == 77            # beyond SLR untouched

    def test_mtslr_mfslr(self):
        m = MediaMachine()
        assemble(
            """
            li r1, 11
            mtslr r1
            mfslr r2
            """
        ).run(m)
        assert m.slr == 11 and m.r[2] == 11

    def test_bad_slr_rejected(self):
        with pytest.raises(ValueError):
            assemble("setslri 17").run()

    def test_accumulator_readout_saturates(self):
        m = MediaMachine()
        m.acc[0].lanes = [1 << 40, -5, 7, 0]
        assemble("vrdaccsd mm0, a0").run(m)
        lanes = unpack_lanes(m.mm[0], ET.INT32)
        assert lanes[0] == (1 << 31) - 1
        assert lanes[1] == -5


class TestAssemblerSyntax:
    def test_comments_and_blank_lines(self):
        prog = assemble("# nothing\n\nli r1, 1  # trailing\n")
        assert len(prog.instructions) == 1

    def test_hex_immediates(self):
        prog = assemble("li r1, 0xFF")
        assert prog.instructions[0].operands == (1, 0xFF)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nx:\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_bad_operand_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("li r1, banana")

    def test_disassemble_roundtrip(self):
        source = """
            li r1, 3
            top:
            addi r1, r1, 1
            loop r1, top
        """
        prog = assemble(source)
        again = assemble(disassemble(prog))
        assert len(again.instructions) == len(prog.instructions)
        assert again.labels == prog.labels
