"""Robustness of the experiment scripts: guard rails, checkpoint, flags."""

import os
import sys

import pytest

SCRIPTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts"
)
sys.path.insert(0, SCRIPTS_DIR)

import check_hotloop  # noqa: E402
import run_experiments  # noqa: E402
from run_experiments import SweepCheckpoint  # noqa: E402


class TestCheckHotloopGuards:
    """A broken baseline must produce an actionable message, not a traceback."""

    def run_main(self, monkeypatch, capsys, baseline_path):
        monkeypatch.setattr(
            check_hotloop, "HOTLOOP_BASELINE", str(baseline_path)
        )
        status = check_hotloop.main([])
        return status, capsys.readouterr().out

    def test_missing_baseline(self, tmp_path, monkeypatch, capsys):
        status, out = self.run_main(
            monkeypatch, capsys, tmp_path / "nowhere.json"
        )
        assert status == 2
        assert "no hot-loop baseline" in out
        assert "git checkout" in out  # tells the user how to fix it

    def test_unparseable_baseline(self, tmp_path, monkeypatch, capsys):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text("{not json at all")
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "unreadable or malformed" in out
        assert "re-record" in out

    def test_wrong_shape_baseline(self, tmp_path, monkeypatch, capsys):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text('["a", "list"]')
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "unreadable or malformed" in out

    def test_missing_required_field(self, tmp_path, monkeypatch, capsys):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text('{"config": {}, "before_seconds": 1.0}')
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "calibration_seconds" in out

    def test_unarmed_baseline_names_the_remedy(
        self, tmp_path, monkeypatch, capsys
    ):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text(
            '{"config": {}, "before_seconds": 1.0, '
            '"calibration_seconds": 0.1}'
        )
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "optimized_speedup" in out


class TestMeasureHotLoopGuard:
    def test_malformed_baseline_returns_none_with_warning(
        self, tmp_path, monkeypatch, capsys
    ):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text("{torn")
        monkeypatch.setattr(
            run_experiments, "HOTLOOP_BASELINE", str(baseline)
        )
        assert run_experiments.measure_hot_loop(runner=None) is None
        assert "unreadable" in capsys.readouterr().err

    def test_missing_baseline_is_silent_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            run_experiments, "HOTLOOP_BASELINE", str(tmp_path / "none.json")
        )
        assert run_experiments.measure_hot_loop(runner=None) is None


class TestSweepCheckpoint:
    KEY = {"scale": "1e-05", "sampling": None, "code_version": "v1"}

    def test_fresh_checkpoint_resumes_nothing(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), self.KEY)
        assert checkpoint.resumed_from == []

    def test_marks_survive_and_resume(self, tmp_path):
        first = SweepCheckpoint(str(tmp_path), self.KEY)
        first.mark("figure5")
        first.mark("figure6")
        resumed = SweepCheckpoint(str(tmp_path), self.KEY)
        assert resumed.resumed_from == ["figure5", "figure6"]

    def test_key_mismatch_invalidates(self, tmp_path):
        SweepCheckpoint(str(tmp_path), self.KEY).mark("figure5")
        other = dict(self.KEY, code_version="v2")
        assert SweepCheckpoint(str(tmp_path), other).resumed_from == []

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        SweepCheckpoint(str(tmp_path), self.KEY).mark("figure5")
        with open(tmp_path / "sweep-checkpoint.json", "w") as handle:
            handle.write("{torn")
        assert SweepCheckpoint(str(tmp_path), self.KEY).resumed_from == []

    def test_clear_removes_the_file(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), self.KEY)
        checkpoint.mark("figure5")
        checkpoint.clear()
        assert not os.path.exists(tmp_path / "sweep-checkpoint.json")
        assert SweepCheckpoint(str(tmp_path), self.KEY).resumed_from == []

    def test_no_cache_dir_disables_persistence(self):
        checkpoint = SweepCheckpoint(None, self.KEY)
        checkpoint.mark("figure5")  # must not raise
        checkpoint.clear()


class TestFlagValidation:
    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_experiments.parse_args(["--retries", "-1"])

    def test_zero_max_failures_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_experiments.parse_args(["--max-failures", "0"])

    def test_resilience_flags_parse(self):
        args = run_experiments.parse_args(
            [
                "--timeout", "30", "--retries", "2",
                "--max-failures", "3", "--fail-fast",
            ]
        )
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.max_failures == 3
        assert args.fail_fast
