"""Robustness of the experiment scripts: guard rails, checkpoint, flags."""

import glob
import json
import os
import signal
import sys
from types import SimpleNamespace

import pytest

from repro.analysis.runner import write_checked_json
from repro.verify import faultinject

SCRIPTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts"
)
sys.path.insert(0, SCRIPTS_DIR)

import check_hotloop  # noqa: E402
import run_experiments  # noqa: E402
import verify_tool  # noqa: E402
from run_experiments import SweepCheckpoint  # noqa: E402


class TestCheckHotloopGuards:
    """A broken baseline must produce an actionable message, not a traceback."""

    def run_main(self, monkeypatch, capsys, baseline_path):
        monkeypatch.setattr(
            check_hotloop, "HOTLOOP_BASELINE", str(baseline_path)
        )
        status = check_hotloop.main([])
        return status, capsys.readouterr().out

    def test_missing_baseline(self, tmp_path, monkeypatch, capsys):
        status, out = self.run_main(
            monkeypatch, capsys, tmp_path / "nowhere.json"
        )
        assert status == 2
        assert "no hot-loop baseline" in out
        assert "git checkout" in out  # tells the user how to fix it

    def test_unparseable_baseline(self, tmp_path, monkeypatch, capsys):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text("{not json at all")
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "unreadable or malformed" in out
        assert "re-record" in out

    def test_wrong_shape_baseline(self, tmp_path, monkeypatch, capsys):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text('["a", "list"]')
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "unreadable or malformed" in out

    def test_missing_required_field(self, tmp_path, monkeypatch, capsys):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text('{"config": {}, "before_seconds": 1.0}')
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "calibration_seconds" in out

    def test_unarmed_baseline_names_the_remedy(
        self, tmp_path, monkeypatch, capsys
    ):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text(
            '{"config": {}, "before_seconds": 1.0, '
            '"calibration_seconds": 0.1}'
        )
        status, out = self.run_main(monkeypatch, capsys, baseline)
        assert status == 2
        assert "optimized_speedup" in out


class TestSampledPointCoreCountSkip:
    """The sharded latency check only runs on a matching core count.

    The baseline's sharded curve was recorded on a known core count
    (``cpu_count`` in results/hotloop_baseline.json); on any other
    machine the pool-dispatch-vs-parallelism tradeoff differs, so the
    sharded comparison is skipped with a notice while the serial curve
    and the bit-identity check still run.
    """

    BASELINE = {
        "cpu_count": 1,
        "sampled_point": {
            "config": {"window_jobs": 4},
            "serial_seconds": 2.0,
            "sharded_seconds": 3.0,
            "calibration_seconds": 0.1,
            "cores_recorded": 1,
        },
    }

    def record(self, cores, sharded_seconds=3.0):
        return {
            "config": {"window_jobs": 4},
            "chunks": 8,
            "cores": cores,
            "identical": True,
            "machine_factor": 1.0,
            "baseline_serial_seconds": 2.0,
            "baseline_sharded_seconds": 3.0,
            "serial_seconds": 2.0,
            "sharded_seconds": sharded_seconds,
            "shard_speedup": 2.0 / sharded_seconds,
        }

    def run_check(self, monkeypatch, record):
        monkeypatch.setattr(
            check_hotloop, "measure_sampled_point", lambda runner: record
        )
        return check_hotloop.check_sampled_point(
            None, self.BASELINE, max_regression=0.25
        )

    def test_matching_cores_checks_both_curves(
        self, monkeypatch, capsys
    ):
        status = self.run_check(monkeypatch, self.record(cores=1))
        out = capsys.readouterr().out
        assert status == 0
        assert "[serial]" in out and "[sharded]" in out
        assert "skipped" not in out

    def test_mismatched_cores_skips_only_the_sharded_curve(
        self, monkeypatch, capsys
    ):
        # A wildly regressed sharded time must NOT fail on a 4-core
        # box when the baseline was recorded on 1 core.
        status = self.run_check(
            monkeypatch, self.record(cores=4, sharded_seconds=50.0)
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "latency check skipped" in out
        assert "[serial]" in out
        assert "4 cores" in out and "recorded on 1" in out

    def test_mismatched_cores_still_guards_serial_and_identity(
        self, monkeypatch, capsys
    ):
        record = self.record(cores=4)
        record["identical"] = False
        assert self.run_check(monkeypatch, record) == 1
        assert "BIT-IDENTITY BROKEN" in capsys.readouterr().out


class TestCheckFlatBackendGuards:
    BASELINE = {
        "cycles": 30572,
        "flat_backend": {
            "flat_seconds": 1.1,
            "calibration_seconds": 0.1,
            "compiled": False,
            "target_speedup_vs_prepr2": 5.0,
        },
    }

    def record(self, **overrides):
        base = {
            "config": {},
            "compiled": False,
            "identical": True,
            "machine_factor": 1.0,
            "baseline_flat_seconds": 1.1,
            "baseline_compiled": False,
            "target_speedup_vs_prepr2": 5.0,
            "flat_seconds": 1.1,
            "object_seconds": 1.0,
            "speedup_vs_object": 0.9,
            "adjusted_prepr2_seconds": 1.6,
            "speedup_vs_prepr2": 1.45,
        }
        base.update(overrides)
        return base

    def run_check(self, monkeypatch, record, allow_drift=False):
        monkeypatch.setattr(
            check_hotloop, "measure_flat_backend", lambda runner: record
        )
        return check_hotloop.check_flat_backend(
            None, self.BASELINE, max_regression=0.25, allow_drift=allow_drift
        )

    def test_within_budget_passes(self, monkeypatch, capsys):
        assert self.run_check(monkeypatch, self.record()) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out
        assert "tracked only: pure-python kernel" in out

    def test_missing_baseline_section_is_actionable(self, capsys):
        status = check_hotloop.check_flat_backend(
            None, {"cycles": 1}, max_regression=0.25, allow_drift=False
        )
        assert status == 2
        assert "no flat_backend record" in capsys.readouterr().out

    def test_bit_identity_break_fails_unconditionally(
        self, monkeypatch, capsys
    ):
        record = self.record(identical=False, flat_seconds=0.01)
        assert self.run_check(monkeypatch, record) == 1
        assert "BIT-IDENTITY BROKEN" in capsys.readouterr().out

    def test_latency_regression_fails(self, monkeypatch, capsys):
        record = self.record(flat_seconds=2.0)
        assert self.run_check(monkeypatch, record) == 1
        assert "[REGRESSION]" in capsys.readouterr().out

    def test_cycle_drift_fails_without_allow_drift(
        self, monkeypatch, capsys
    ):
        record = self.record(speedup_vs_prepr2=None, note="cycle drift")
        assert self.run_check(monkeypatch, record) == 1
        assert self.run_check(monkeypatch, record, allow_drift=True) == 0

    def test_pure_python_below_target_is_tracked_not_gated(
        self, monkeypatch
    ):
        # speedup_vs_prepr2 1.45 is far below the 5x target; with a
        # pure-python kernel that is informational, not a failure.
        assert (
            self.run_check(monkeypatch, self.record(speedup_vs_prepr2=1.45))
            == 0
        )

    def test_compiled_kernel_below_target_is_gated(
        self, monkeypatch, capsys
    ):
        record = self.record(
            compiled=True, baseline_compiled=True, speedup_vs_prepr2=2.0
        )
        assert self.run_check(monkeypatch, record) == 1
        assert "below the recorded target" in capsys.readouterr().out


class TestMeasureHotLoopGuard:
    def test_malformed_baseline_returns_none_with_warning(
        self, tmp_path, monkeypatch, capsys
    ):
        baseline = tmp_path / "hotloop_baseline.json"
        baseline.write_text("{torn")
        monkeypatch.setattr(
            run_experiments, "HOTLOOP_BASELINE", str(baseline)
        )
        assert run_experiments.measure_hot_loop(runner=None) is None
        assert "unreadable" in capsys.readouterr().err

    def test_missing_baseline_is_silent_none(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            run_experiments, "HOTLOOP_BASELINE", str(tmp_path / "none.json")
        )
        assert run_experiments.measure_hot_loop(runner=None) is None


class TestSweepCheckpoint:
    KEY = {"scale": "1e-05", "sampling": None, "code_version": "v1"}

    def test_fresh_checkpoint_resumes_nothing(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), self.KEY)
        assert checkpoint.resumed_from == []

    def test_marks_survive_and_resume(self, tmp_path):
        first = SweepCheckpoint(str(tmp_path), self.KEY)
        first.mark("figure5")
        first.mark("figure6")
        resumed = SweepCheckpoint(str(tmp_path), self.KEY)
        assert resumed.resumed_from == ["figure5", "figure6"]

    def test_key_mismatch_invalidates(self, tmp_path):
        SweepCheckpoint(str(tmp_path), self.KEY).mark("figure5")
        other = dict(self.KEY, code_version="v2")
        assert SweepCheckpoint(str(tmp_path), other).resumed_from == []

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        SweepCheckpoint(str(tmp_path), self.KEY).mark("figure5")
        with open(tmp_path / "sweep-checkpoint.json", "w") as handle:
            handle.write("{torn")
        assert SweepCheckpoint(str(tmp_path), self.KEY).resumed_from == []

    def test_clear_removes_the_file(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path), self.KEY)
        checkpoint.mark("figure5")
        checkpoint.clear()
        assert not os.path.exists(tmp_path / "sweep-checkpoint.json")
        assert SweepCheckpoint(str(tmp_path), self.KEY).resumed_from == []

    def test_no_cache_dir_disables_persistence(self):
        checkpoint = SweepCheckpoint(None, self.KEY)
        checkpoint.mark("figure5")  # must not raise
        checkpoint.clear()


class TestFlagValidation:
    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_experiments.parse_args(["--retries", "-1"])

    def test_zero_max_failures_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_experiments.parse_args(["--max-failures", "0"])

    def test_resilience_flags_parse(self):
        args = run_experiments.parse_args(
            [
                "--timeout", "30", "--retries", "2",
                "--max-failures", "3", "--fail-fast",
            ]
        )
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.max_failures == 3
        assert args.fail_fast


# ----- the full driver under interruption and fault summaries -----------------


def _figure_stub(name):
    """A driver double: accepts the timed() kwargs, returns a report."""

    def driver(scale, runner, **kwargs):
        runs = {
            (isa, "rr", 8): SimpleNamespace(vector_only_fraction=0.01)
            for isa in ("mmx", "mom")
        }
        return SimpleNamespace(
            report=f"{name} stub report", measured={"figure": name}, runs=runs
        )

    return driver


def _stub_all_figures(monkeypatch):
    for attr in (
        "run_breakdown_table3", "run_fig4_ideal", "run_fig5_real",
        "run_table4_cache", "run_fig6_fetch", "run_fig8_decoupled",
        "run_fig9_summary", "run_stall_breakdown",
    ):
        monkeypatch.setattr(run_experiments, attr, _figure_stub(attr))


def _checkpoint_key(scale=1e-5):
    return {
        "scale": repr(scale),
        "sampling": None,
        "code_version": run_experiments.code_version(),
    }


class TestSigtermCheckpointFlush:
    def test_sigterm_mid_sweep_flushes_checkpoint_and_exits_143(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            run_experiments, "RESULTS_DIR", str(tmp_path / "results")
        )
        _stub_all_figures(monkeypatch)

        def dying_fig4(scale, runner, **kwargs):
            # Stand-in for a scheduler's polite kill arriving mid-figure:
            # the handler main() installed turns it into SystemExit(143).
            signal.raise_signal(signal.SIGTERM)
            pytest.fail("the SIGTERM handler did not unwind the sweep")

        monkeypatch.setattr(run_experiments, "run_fig4_ideal", dying_fig4)
        cache_dir = str(tmp_path / "cache")
        rc = run_experiments.main(
            ["1e-5", "--cache-dir", cache_dir, "--output", "-"]
        )
        assert rc == 128 + signal.SIGTERM

        # The checkpoint was flushed mid-unwind: a rerun resumes from
        # table3 exactly as it would after a SIGKILL.
        resumed = SweepCheckpoint(cache_dir, _checkpoint_key())
        assert resumed.resumed_from == ["table3"]

        captured = capsys.readouterr()
        assert "interrupted; figure checkpoint flushed" in captured.err
        assert "resilience:" in captured.out
        with open(
            os.path.join(str(tmp_path / "results"), "BENCH_experiments.json")
        ) as handle:
            bench = json.load(handle)
        assert bench["status"] == "interrupted"


class TestResilienceSummaryLine:
    def test_summary_printed_on_a_clean_run(
        self, tmp_path, monkeypatch, capsys
    ):
        # The line must appear unconditionally — a clean run is visibly
        # clean, not silent (the counts used to ride BENCH provenance
        # only).
        monkeypatch.setattr(
            run_experiments, "RESULTS_DIR", str(tmp_path / "results")
        )
        _stub_all_figures(monkeypatch)
        rc = run_experiments.main([
            "1e-5", "--cache-dir", str(tmp_path / "cache"),
            "--output", "-", "--no-hotloop",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "resilience: 0 retries, 0 timeouts, 0 pool restarts" in out
        )
        with open(
            os.path.join(str(tmp_path / "results"), "BENCH_experiments.json")
        ) as handle:
            assert json.load(handle)["status"] == "ok"


# ----- verify_tool cache subcommand -------------------------------------------


class TestVerifyToolCache:
    def entry(self, directory, name="aa"):
        path = os.path.join(str(directory), f"{name}.json")
        write_checked_json(path, {"result": {"ipc": 1.0}})
        return path

    def test_clean_cache_passes(self, tmp_path, capsys):
        self.entry(tmp_path)
        assert verify_tool.run_cache(cache_dir=str(tmp_path)) is True
        out = capsys.readouterr().out
        assert "1 ok, 0 corrupt, 0 legacy, 0 quarantined" in out

    def test_missing_directory_is_clean(self, tmp_path, capsys):
        assert verify_tool.run_cache(cache_dir=str(tmp_path / "no")) is True
        assert "no cache directory" in capsys.readouterr().out

    def test_corrupt_entry_fails_with_hint(self, tmp_path, capsys):
        self.entry(tmp_path)
        corrupt = self.entry(tmp_path, name="bb")
        with open(corrupt, "wb") as handle:
            handle.write(faultinject.CORRUPT_PAYLOAD)
        assert verify_tool.run_cache(cache_dir=str(tmp_path)) is False
        out = capsys.readouterr().out
        assert "1 ok, 1 corrupt" in out
        assert "CORRUPT" in out
        assert "--purge-corrupt" in out

    def test_purge_quarantines_and_rescans_clean(self, tmp_path, capsys):
        corrupt = self.entry(tmp_path, name="bb")
        with open(corrupt, "wb") as handle:
            handle.write(faultinject.CORRUPT_PAYLOAD)
        assert (
            verify_tool.run_cache(cache_dir=str(tmp_path), purge=True)
            is True
        )
        assert "purged" in capsys.readouterr().out
        assert not os.path.exists(corrupt)
        assert not glob.glob(os.path.join(str(tmp_path), "*.corrupt"))
        assert verify_tool.run_cache(cache_dir=str(tmp_path)) is True

    def test_legacy_entries_reported_but_not_fatal(self, tmp_path, capsys):
        with open(os.path.join(str(tmp_path), "old.json"), "w") as handle:
            json.dump({"pre-checksum": True}, handle)
        assert verify_tool.run_cache(cache_dir=str(tmp_path)) is True
        out = capsys.readouterr().out
        assert "1 legacy" in out
        assert "LEGACY" in out

    def test_main_cache_subcommand_gates_exit_status(self, tmp_path, capsys):
        corrupt = self.entry(tmp_path, name="bb")
        with open(corrupt, "wb") as handle:
            handle.write(faultinject.CORRUPT_PAYLOAD)
        # main() receives a full argv (program name first).
        argv = ["verify_tool.py", "cache", "--cache-dir", str(tmp_path)]
        assert verify_tool.main(argv) == 1
        assert verify_tool.main(argv + ["--purge-corrupt"]) == 0
