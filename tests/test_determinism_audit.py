"""Determinism audit: no unseeded randomness, no ordering dependence.

The whole harness rests on runs being exactly reproducible — the result
cache, the bit-identity suite, the golden runs and the chaos harness's
byte-identical-report guarantee all assume it (policy in
``docs/TESTING.md``).  These tests audit the two ways determinism rots:

* **unseeded randomness / wall-clock leaks** — a static scan of the
  simulation packages for module-level RNG calls, clock reads and other
  entropy sources.  Randomness is allowed only as a seeded
  ``random.Random(seed)`` instance in the trace generator.
* **ordering dependence** — the same run executed under different
  ``PYTHONHASHSEED`` values must produce byte-identical canonical
  results; iteration over a ``set``/``dict`` whose order leaks into the
  simulation shows up here as a hash-seed-dependent divergence.
"""

import hashlib
import json
import os
import re
import subprocess
import sys

import pytest

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src", "repro")
)

#: Packages whose code feeds simulated outcomes (and therefore the run
#: cache fingerprint — keep in sync with ``runner._SIMULATION_PACKAGES``).
SIM_PACKAGES = ("core", "memory", "isa", "tracegen", "workloads")

#: Entropy/clock constructs that must never appear in simulation code.
#: ``random.Random(`` (a seeded instance) is deliberately NOT matched:
#: the bans cover the module-level functions that share hidden global
#: state and the OS-level entropy/clock sources.
FORBIDDEN = {
    "module-level RNG call": re.compile(
        r"\brandom\.(random|randint|randrange|choice|choices|shuffle|"
        r"sample|seed|gauss|uniform|betavariate|expovariate)\s*\("
    ),
    "wall-clock read": re.compile(
        r"\btime\.(time|perf_counter|monotonic|process_time)\s*\("
    ),
    "OS entropy": re.compile(r"\bos\.urandom\s*\(|\buuid\.uuid"),
    "NumPy RNG": re.compile(r"\bnp\.random\.|\bnumpy\.random\."),
}


def sim_sources():
    for package in SIM_PACKAGES:
        root = os.path.join(SRC, package)
        for dirpath, __, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def test_simulation_packages_are_entropy_free():
    violations = []
    for path in sim_sources():
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                code = line.split("#", 1)[0]
                for label, pattern in FORBIDDEN.items():
                    if pattern.search(code):
                        rel = os.path.relpath(path, SRC)
                        violations.append(f"{rel}:{lineno}: {label}: "
                                          f"{line.strip()}")
    assert not violations, (
        "simulation code reached for unseeded entropy or the wall clock "
        "(seeded random.Random instances are the only sanctioned "
        "randomness — docs/TESTING.md):\n" + "\n".join(violations)
    )


def test_rng_construction_is_always_seeded():
    # Every random.Random(...) in the tree must receive an explicit
    # seed expression; a bare random.Random() reseeds from the OS.
    bare = re.compile(r"\brandom\.Random\(\s*\)")
    violations = []
    for path in sim_sources():
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                if bare.search(line.split("#", 1)[0]):
                    violations.append(
                        f"{os.path.relpath(path, SRC)}:{lineno}: "
                        f"{line.strip()}"
                    )
    assert not violations, (
        "unseeded random.Random() found:\n" + "\n".join(violations)
    )


def test_obs_package_reads_no_wall_clock_outside_profiler():
    # The profiler is the one sanctioned clock consumer (its output is
    # declared volatile and never enters reports or cache keys); event
    # and metric code must stay time-free so observed snapshots are
    # reproducible.
    clock = FORBIDDEN["wall-clock read"]
    for dirpath, __, filenames in os.walk(os.path.join(SRC, "obs")):
        for name in sorted(filenames):
            if not name.endswith(".py") or name == "profile.py":
                continue
            with open(os.path.join(dirpath, name)) as handle:
                for lineno, line in enumerate(handle, 1):
                    assert not clock.search(line.split("#", 1)[0]), (
                        f"obs/{name}:{lineno} reads the wall clock; only "
                        f"obs/profile.py may ({line.strip()})"
                    )


_HASHSEED_CHILD = """
import hashlib, json
from repro.analysis.runner import RunRequest, execute_request, result_to_dict
result = execute_request(RunRequest(
    isa="mom", n_threads=2, memory="conventional", fetch_policy="rr",
    scale=2e-5,
))
blob = json.dumps(result_to_dict(result), sort_keys=True,
                  separators=(",", ":"))
print(hashlib.sha256(blob.encode()).hexdigest())
"""


@pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
def test_results_are_hashseed_independent(hashseed, tmp_path):
    # Different PYTHONHASHSEED values randomize set/dict iteration
    # order; a simulation outcome that depends on it diverges here.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(SRC, "..")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_CHILD],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    digest = proc.stdout.strip()
    reference_path = tmp_path.parent / "hashseed-reference.txt"
    # First parametrization writes the reference; the rest must match.
    try:
        with open(reference_path, "x") as handle:
            handle.write(digest)
    except FileExistsError:
        with open(reference_path) as handle:
            assert digest == handle.read(), (
                f"result hash changed under PYTHONHASHSEED={hashseed}: "
                "a set/dict iteration order is leaking into the simulation"
            )


def test_observer_streams_are_run_to_run_identical():
    # Two observed runs of the same config in one process: the event
    # stream and the metrics snapshot must match element for element
    # (id()-keyed bookkeeping must not leak allocation order).
    from repro.core import SMTConfig, SMTProcessor
    from repro.memory import ConventionalHierarchy
    from repro.tracegen import build_program_trace

    def observed_run():
        traces = [
            build_program_trace("jpegenc", "mom", scale=2e-5),
            build_program_trace("gsmdec", "mom", scale=2e-5),
        ]
        processor = SMTProcessor(
            SMTConfig(isa="mom", n_threads=4, observe=True),
            ConventionalHierarchy(),
            traces,
            completions_target=1,
            warmup_fraction=0.0,
        )
        result = processor.run()
        observer = processor.observer
        return (
            [record.to_dict() for record in observer.records],
            observer.mem_events,
            result.observability["metrics"],
        )

    first, second = observed_run(), observed_run()
    assert first[0] == second[0], "instruction records diverged"
    assert first[1] == second[1], "memory events diverged"
    assert first[2] == second[2], "metrics snapshot diverged"
    digest = hashlib.sha256(
        json.dumps(first, sort_keys=True).encode()
    ).hexdigest()
    assert digest == hashlib.sha256(
        json.dumps(second, sort_keys=True).encode()
    ).hexdigest()
