"""Determinism audit: no unseeded randomness, no ordering dependence.

The whole harness rests on runs being exactly reproducible — the result
cache, the bit-identity suite, the golden runs and the chaos harness's
byte-identical-report guarantee all assume it (policy in
``docs/TESTING.md``).  These tests audit the two ways determinism rots:

* **unseeded randomness / wall-clock leaks** — the ``DET-*`` family of
  the repo linter (:mod:`repro.verify.codelint`) runs its AST analysis
  over the simulation packages: module-level RNG calls, clock reads,
  entropy sources (including aliased and laundered references, which
  the old regex scan could not see) and set-iteration-order leaks.
  Randomness is allowed only as a seeded ``random.Random(seed)``
  instance in the trace generator.
* **ordering dependence** — the same run executed under different
  ``PYTHONHASHSEED`` values must produce byte-identical canonical
  results; iteration over a ``set``/``dict`` whose order leaks into the
  simulation shows up here as a hash-seed-dependent divergence.

The static half delegates to codelint so the audit, the ``lint`` CI
step and ``scripts/verify_tool.py lint`` enforce one rule set with one
suppression mechanism; rule catalog in ``docs/VERIFY.md``.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.verify import codelint

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src", "repro")
)
REPO = os.path.dirname(os.path.dirname(SRC))


def det_diagnostics():
    diagnostics, files = codelint.lint_repo(REPO, families=("DET",))
    assert len(files) > 50, "codelint found implausibly few files"
    return diagnostics


def test_simulation_packages_are_entropy_free():
    violations = [
        str(d) for d in det_diagnostics() if d.code != "DET-SET-ORDER"
    ]
    assert not violations, (
        "simulation code reached for unseeded entropy or the wall clock "
        "(seeded random.Random instances are the only sanctioned "
        "randomness — docs/TESTING.md):\n" + "\n".join(violations)
    )


def test_rng_construction_is_always_seeded():
    # Every random.Random(...) in the tree must receive an explicit
    # seed expression; a bare random.Random() reseeds from the OS.
    violations = [
        str(d)
        for d in det_diagnostics()
        if d.code == "DET-UNSEEDED-RANDOM"
    ]
    assert not violations, (
        "unseeded random.Random() found:\n" + "\n".join(violations)
    )


def test_set_iteration_order_never_observed():
    violations = [
        str(d) for d in det_diagnostics() if d.code == "DET-SET-ORDER"
    ]
    assert not violations, (
        "simulation code iterates a set (arbitrary, hash-seed-dependent "
        "order); sort first or use a list/dict:\n" + "\n".join(violations)
    )


def test_obs_package_reads_no_wall_clock_outside_profiler():
    # The profiler is the one sanctioned clock consumer (its output is
    # declared volatile and never enters reports or cache keys); it
    # carries the repo's only codelint file-suppression, so DET-CLOCK
    # must report clean across obs/ — and the audit double-checks the
    # suppression stays confined to profile.py.
    clock_leaks = [
        str(d) for d in det_diagnostics() if d.code == "DET-CLOCK"
    ]
    assert not clock_leaks, "\n".join(clock_leaks)

    profile = codelint.collect_repo_files(REPO).get("obs/profile.py")
    assert profile is not None
    assert profile.suppressed("DET-CLOCK", 1), (
        "obs/profile.py lost its sanctioned DET-CLOCK file suppression"
    )


_HASHSEED_CHILD = """
import hashlib, json
from repro.analysis.runner import RunRequest, execute_request, result_to_dict
result = execute_request(RunRequest(
    isa="mom", n_threads=2, memory="conventional", fetch_policy="rr",
    scale=2e-5,
))
blob = json.dumps(result_to_dict(result), sort_keys=True,
                  separators=(",", ":"))
print(hashlib.sha256(blob.encode()).hexdigest())
"""


@pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
def test_results_are_hashseed_independent(hashseed, tmp_path):
    # Different PYTHONHASHSEED values randomize set/dict iteration
    # order; a simulation outcome that depends on it diverges here.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(SRC, "..")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_CHILD],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    digest = proc.stdout.strip()
    reference_path = tmp_path.parent / "hashseed-reference.txt"
    # First parametrization writes the reference; the rest must match.
    try:
        with open(reference_path, "x") as handle:
            handle.write(digest)
    except FileExistsError:
        with open(reference_path) as handle:
            assert digest == handle.read(), (
                f"result hash changed under PYTHONHASHSEED={hashseed}: "
                "a set/dict iteration order is leaking into the simulation"
            )


def test_observer_streams_are_run_to_run_identical():
    # Two observed runs of the same config in one process: the event
    # stream and the metrics snapshot must match element for element
    # (id()-keyed bookkeeping must not leak allocation order).
    from repro.core import SMTConfig, SMTProcessor
    from repro.memory import ConventionalHierarchy
    from repro.tracegen import build_program_trace

    def observed_run():
        traces = [
            build_program_trace("jpegenc", "mom", scale=2e-5),
            build_program_trace("gsmdec", "mom", scale=2e-5),
        ]
        processor = SMTProcessor(
            SMTConfig(isa="mom", n_threads=4, observe=True),
            ConventionalHierarchy(),
            traces,
            completions_target=1,
            warmup_fraction=0.0,
        )
        result = processor.run()
        observer = processor.observer
        return (
            [record.to_dict() for record in observer.records],
            observer.mem_events,
            result.observability["metrics"],
        )

    first, second = observed_run(), observed_run()
    assert first[0] == second[0], "instruction records diverged"
    assert first[1] == second[1], "memory events diverged"
    assert first[2] == second[2], "metrics snapshot diverged"
    digest = hashlib.sha256(
        json.dumps(first, sort_keys=True).encode()
    ).hexdigest()
    assert digest == hashlib.sha256(
        json.dumps(second, sort_keys=True).encode()
    ).hexdigest()
