"""Bit-identity: `observe=None` runs are byte-identical to the pre-
observability tree.

``tests/golden/bitident.json`` pins, from the commit immediately before
the observability layer landed: the canonical ``RunResult`` JSON hash of
four representative runs, their pinned-version ``RunRequest``
fingerprints, and the headline counters.  Any observability hook that
perturbs a disabled run — an extra stat, a reordered dict key, a
serialized ``None`` — fails here with the exact run that diverged.
"""

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import asdict, fields

import pytest

from repro.analysis.runner import (
    RESULT_FORMAT,
    RunRequest,
    execute_request,
    result_from_dict,
    result_to_dict,
)
from repro.core.metrics import RunResult

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "bitident.json"
)

with open(GOLDEN_PATH) as _handle:
    GOLDEN = json.load(_handle)


def request_of(entry: dict) -> RunRequest:
    payload = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in entry["request"].items()
    }
    return RunRequest(**payload)


def canonical_sha256(result) -> str:
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDEN["runs"]))
def test_unobserved_run_matches_pre_observability_bytes(name):
    entry = GOLDEN["runs"][name]
    result = execute_request(request_of(entry))
    assert result.cycles == entry["cycles"], name
    assert result.committed_instructions == entry["committed_instructions"]
    assert result.committed_equivalent == pytest.approx(
        entry["committed_equivalent"], abs=0, rel=0
    )
    assert canonical_sha256(result) == entry["result_sha256"], (
        f"{name}: RunResult JSON diverged from the pre-observability tree"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN["runs"]))
def test_fingerprints_unchanged_under_pinned_version(name):
    # Fingerprints mix in code_version(), which necessarily moves every
    # PR; pinning the version isolates the request schema + canonical
    # serialization, which must NOT move (the cache would silently fork
    # if e.g. RunRequest grew an `observe` field).
    entry = GOLDEN["runs"][name]
    fingerprint = request_of(entry).fingerprint(GOLDEN["pinned_version"])
    assert fingerprint == entry["fingerprint_pinned"]


def test_result_format_unchanged():
    assert RESULT_FORMAT == 2


def test_run_request_has_no_observe_field():
    # Observability is per-SMTConfig, never per-request: cached results
    # must be shared between observed and unobserved callers.
    assert "observe" not in {f.name for f in fields(RunRequest)}


def test_unobserved_result_serializes_without_observability_key():
    entry = GOLDEN["runs"]["mmx/1T/conventional/rr"]
    result = execute_request(request_of(entry))
    payload = result_to_dict(result)
    assert "observability" not in payload
    restored = result_from_dict(payload)
    assert restored.observability is None
    assert result_to_dict(restored) == payload


def test_observed_result_round_trips_snapshot():
    entry = GOLDEN["runs"]["mmx/1T/conventional/rr"]
    result = execute_request(request_of(entry))
    observed = RunResult(
        **{**result_to_dict(result), "memory": result.memory,
           "observability": {"metrics": {}, "records": 0,
                             "mem_events": 0, "dropped_records": 0,
                             "dropped_events": 0}},
    )
    payload = result_to_dict(observed)
    assert payload["observability"]["records"] == 0
    assert result_from_dict(payload).observability == observed.observability


def test_plain_run_never_imports_the_obs_package():
    # The zero-overhead contract starts at import time: a run without
    # observe= must not even load repro.obs (the lazy import in the
    # core is the only edge into it).
    script = (
        "import sys\n"
        "from repro.analysis.runner import RunRequest, execute_request\n"
        "execute_request(RunRequest(isa='mmx', n_threads=1,"
        " memory='perfect', fetch_policy='rr', scale=2e-5))\n"
        "assert not any(m.startswith('repro.obs') for m in sys.modules),"
        " sorted(m for m in sys.modules if m.startswith('repro.obs'))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr


def test_golden_requests_cover_both_hierarchies_and_sampling():
    requests = [request_of(e) for e in GOLDEN["runs"].values()]
    assert {r.memory for r in requests} >= {
        "conventional", "decoupled", "perfect",
    }
    assert {r.isa for r in requests} == {"mmx", "mom"}
    assert any(r.sampling for r in requests)
    assert all(asdict(r)["scale"] == GOLDEN["scale"] for r in requests)
