"""Unit tests for the SMT core building blocks."""

import pytest

from repro.core.branch import GsharePredictor
from repro.core.execute import VectorUnit
from repro.core.fetch import FetchPolicy, order_threads
from repro.core.params import SMTConfig, scaled_resources
from repro.core.queues import IssueQueue
from repro.core.rob import GraduationWindow
from repro.isa.registers import RegisterClass


class _Entry:
    """Minimal stand-in for an InFlight record."""

    def __init__(self, deps=0):
        self.deps = deps
        self.squashed = False
        self.state = 0


class TestGshare:
    def test_learns_always_taken(self):
        p = GsharePredictor()
        for __ in range(50):
            p.predict_and_update(0, 0x1000, True)
        assert p.mispredict_rate < 0.1

    def test_learns_alternating_pattern(self):
        p = GsharePredictor()
        for i in range(400):
            p.predict_and_update(0, 0x2000, i % 2 == 0)
        # With history the alternation becomes almost fully predictable.
        late = GsharePredictor()
        late._table = p._table
        late._history = dict(p._history)
        hits = sum(
            late.predict_and_update(0, 0x2000, i % 2 == 0) for i in range(100)
        )
        assert hits > 90

    def test_random_branch_about_half_wrong(self):
        import random

        rng = random.Random(3)
        p = GsharePredictor()
        for __ in range(2000):
            p.predict_and_update(0, 0x3000, rng.random() < 0.5)
        assert 0.35 < p.mispredict_rate < 0.65

    def test_per_thread_history_isolated(self):
        p = GsharePredictor()
        p.predict_and_update(0, 0x10, True)
        assert p._history.get(0) != p._history.get(1, None) or 1 not in p._history

    def test_reset_thread(self):
        p = GsharePredictor()
        p.predict_and_update(2, 0x10, True)
        p.reset_thread(2)
        assert p._history[2] == 0

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=1)


class TestVectorUnit:
    def test_occupancy_two_lanes(self):
        unit = VectorUnit(lanes=2)
        assert unit.occupancy_of(16) == 8
        assert unit.occupancy_of(8) == 4
        assert unit.occupancy_of(1) == 1

    def test_reduction_is_serial(self):
        unit = VectorUnit(lanes=2)
        assert unit.occupancy_of(16, reduction=True) == 16

    def test_back_to_back_streams_serialize_on_occupancy(self):
        unit = VectorUnit(lanes=2)
        first = unit.execute(0, 16, latency=1)
        second = unit.execute(0, 16, latency=1)
        assert second - first == 8        # second waited for the pipe

    def test_startup_latency_applied(self):
        unit = VectorUnit(lanes=2)
        done = unit.execute(0, 2, latency=1)
        assert done == VectorUnit.STARTUP + 1

    def test_busy_accounting(self):
        unit = VectorUnit(lanes=4)
        unit.execute(0, 16, latency=1)
        assert unit.busy_cycles == 4

    def test_lane_validation(self):
        with pytest.raises(ValueError):
            VectorUnit(lanes=0)


class TestIssueQueue:
    def test_ready_entry_pops(self):
        q = IssueQueue("int", 4)
        entry = _Entry(deps=0)
        q.insert(entry)
        assert q.pop_ready() is entry
        assert q.occupancy == 0

    def test_waiting_entry_not_ready(self):
        q = IssueQueue("int", 4)
        q.insert(_Entry(deps=2))
        assert q.pop_ready() is None
        assert q.occupancy == 1

    def test_wake_moves_to_ready(self):
        q = IssueQueue("int", 4)
        entry = _Entry(deps=1)
        q.insert(entry)
        entry.deps = 0
        q.wake(entry)
        assert q.pop_ready() is entry

    def test_overflow_rejected(self):
        q = IssueQueue("int", 1)
        q.insert(_Entry())
        with pytest.raises(RuntimeError):
            q.insert(_Entry())

    def test_fifo_order(self):
        q = IssueQueue("int", 4)
        first, second = _Entry(), _Entry()
        q.insert(first)
        q.insert(second)
        assert q.pop_ready() is first
        assert q.pop_ready() is second

    def test_squashed_entries_skipped(self):
        q = IssueQueue("int", 4)
        dead, live = _Entry(), _Entry()
        q.insert(dead)
        q.insert(live)
        dead.squashed = True
        assert q.pop_ready() is live


class TestGraduationWindow:
    def test_per_thread_fifo_order(self):
        w = GraduationWindow(8, 2)
        a, b = _Entry(), _Entry()
        w.insert(0, a)
        w.insert(0, b)
        assert w.head(0) is a
        assert w.retire_head(0) is a
        assert w.head(0) is b

    def test_shared_capacity(self):
        w = GraduationWindow(2, 2)
        w.insert(0, _Entry())
        w.insert(1, _Entry())
        assert not w.has_space
        with pytest.raises(RuntimeError):
            w.insert(0, _Entry())

    def test_flush_thread_squashes(self):
        w = GraduationWindow(8, 2)
        mine, theirs = _Entry(), _Entry()
        w.insert(0, mine)
        w.insert(1, theirs)
        assert w.flush_thread(0) == 1
        assert mine.squashed and not theirs.squashed
        assert w.is_empty(0) and not w.is_empty(1)
        assert w.occupancy == 1

    def test_thread_occupancy(self):
        w = GraduationWindow(8, 2)
        w.insert(1, _Entry())
        assert w.thread_occupancy(1) == 1
        assert w.thread_occupancy(0) == 0


class TestFetchPolicies:
    def setup_method(self):
        self.kwargs = dict(
            n_threads=4,
            rotation=0,
            inflight_insts=[5, 1, 9, 3],
            inflight_ops=[5, 30, 9, 3],
            fetched_vector_last=[True, False, True, False],
            simd_queue_empty=False,
        )

    def test_rr_rotates(self):
        order = order_threads(FetchPolicy.RR, 4, 2, [0] * 4, [0] * 4, [False] * 4, True)
        assert order == [2, 3, 0, 1]

    def test_icount_prefers_emptiest(self):
        order = order_threads(FetchPolicy.ICOUNT, **self.kwargs)
        assert order[0] == 1 and order[-1] == 2

    def test_ocount_counts_operations(self):
        # Thread 1 has few instructions but many operations (long streams).
        order = order_threads(FetchPolicy.OCOUNT, **self.kwargs)
        assert order[0] == 3 and order[-1] == 1

    def test_balance_prefers_nonvector_when_pipe_busy(self):
        order = order_threads(FetchPolicy.BALANCE, **self.kwargs)
        assert set(order[:2]) == {1, 3}

    def test_balance_prefers_vector_when_pipe_empty(self):
        kwargs = dict(self.kwargs, simd_queue_empty=True)
        order = order_threads(FetchPolicy.BALANCE, **kwargs)
        assert set(order[:2]) == {0, 2}


class TestParams:
    def test_resources_grow_with_threads(self):
        r1, r8 = scaled_resources(1), scaled_resources(8)
        assert r8.graduation_window > r1.graduation_window
        assert (
            r8.rename_regs[RegisterClass.INT] > r1.rename_regs[RegisterClass.INT]
        )

    def test_odd_thread_counts_interpolate(self):
        assert scaled_resources(3) == scaled_resources(4)
        assert scaled_resources(16) == scaled_resources(8)

    def test_mmx_config_issue_width_2(self):
        assert SMTConfig(isa="mmx").issue_simd == 2

    def test_mom_config_issue_width_1(self):
        assert SMTConfig(isa="mom").issue_simd == 1
        assert SMTConfig(isa="mom").vector_lanes == 2

    def test_fetch_width(self):
        assert SMTConfig().fetch_width == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SMTConfig(isa="sse9")
        with pytest.raises(ValueError):
            SMTConfig(n_threads=0)
