"""Golden-run regression suite: headline ratios stay inside their bands.

``tests/golden/{table3,fig4,fig6,fig8}.json`` freeze the experiments'
headline metrics at smoke scale (see ``repro.analysis.goldens``).  Each
test re-measures one experiment and fails with a golden/measured/paper
diff table when any metric leaves its tolerance band.  Regenerate after
a *deliberate* modelling change with ``scripts/update_goldens.py``.
"""

import hashlib
import json
import os

import pytest

from repro.analysis.goldens import (
    EXPERIMENTS,
    GOLDEN_SCALE,
    GOLDEN_THREADS,
    allowed_band,
    check_experiment,
    compare_metrics,
    compute_golden_metrics,
    golden_path,
)
from repro.analysis.runner import Runner

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def runner():
    # One runner for the whole module: overlapping simulation points
    # between experiments are memoized in process.
    return Runner()


def load_golden(experiment):
    with open(golden_path(experiment, GOLDEN_DIR)) as handle:
        return json.load(handle)


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_golden_file_is_well_formed(experiment):
    document = load_golden(experiment)
    assert document["experiment"] == experiment
    assert document["scale"] == GOLDEN_SCALE
    assert document["threads"] == list(GOLDEN_THREADS)
    assert document["metrics"], "a golden file must lock at least one metric"
    for name, metric in document["metrics"].items():
        assert allowed_band(metric) > 0, (
            f"{experiment}:{name} has no tolerance band — "
            "an exact-match golden breaks on any legitimate drift"
        )


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_headline_metrics_stay_inside_golden_bands(experiment, runner):
    failures, report = check_experiment(experiment, GOLDEN_DIR, runner)
    assert not failures, (
        f"{len(failures)} golden metric(s) moved out of band "
        f"({', '.join(failures)}).  If the modelling change is deliberate, "
        f"regenerate with scripts/update_goldens.py.\n{report}"
    )


def test_table3_is_deterministic_and_tight(runner):
    # The Table 3 metrics are pure trace-generator functions: two
    # computations in one process must agree exactly, well inside any
    # band.
    first = compute_golden_metrics("table3", runner)
    second = compute_golden_metrics("table3", runner)
    assert first == second


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown golden experiment"):
        compute_golden_metrics("fig99")


# ----- sharded-vs-serial sampled pins ----------------------------------------


def load_bitident():
    with open(os.path.join(GOLDEN_DIR, "bitident.json")) as handle:
        return json.load(handle)


def canonical_sha256(result):
    from repro.analysis.runner import result_to_dict

    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("name", sorted(load_bitident()["sharded_runs"]))
def test_sharded_sampled_runs_reproduce_serial_hashes(name):
    """window_jobs > 1 must reproduce the pinned serial hash exactly.

    Runs each pinned configuration twice — the serial schedule and a
    two-worker sharded one — and asserts both match the recorded
    canonical hash: same samples, same CI inputs, same everything.
    """
    from dataclasses import replace

    from repro.analysis.runner import (
        RunRequest,
        execute_request,
        workload_traces,
    )
    from repro.core.smt import sampled_chunk_count

    pinned = load_bitident()["sharded_runs"][name]
    request = RunRequest(**pinned["request"])
    traces = workload_traces(request.isa, request.scale, request.seed)
    n_chunks = sampled_chunk_count(
        request.sampling, traces, request.completions_target
    )
    assert n_chunks == pinned["n_chunks"], (
        "the pinned configuration no longer chunks as recorded — the "
        "sharded pins must exercise a genuinely multi-chunk schedule"
    )
    assert n_chunks > 1

    serial = execute_request(request)
    assert canonical_sha256(serial) == pinned["result_sha256"]
    assert serial.cycles == pinned["cycles"]
    assert serial.committed_instructions == pinned["committed_instructions"]

    sharded = execute_request(replace(request, window_jobs=2))
    assert canonical_sha256(sharded) == pinned["result_sha256"]


def test_sharded_pins_pin_their_fingerprints():
    # Frozen under the pinned version so unrelated source edits don't
    # churn this file — only a deliberate request-schema change does.
    document = load_bitident()
    from repro.analysis.runner import RunRequest

    for name, pinned in document["sharded_runs"].items():
        request = RunRequest(**pinned["request"])
        assert (
            request.fingerprint(document["pinned_version"])
            == pinned["fingerprint_pinned"]
        ), name


# ----- serving bit-identity pins ---------------------------------------------


@pytest.mark.parametrize("name", sorted(load_bitident()["serving_runs"]))
def test_serving_run_reproduces_pinned_hash(name):
    """A serving result is a pure function of its request: re-executing
    the pinned request must reproduce the recorded canonical JSON hash
    bit for bit."""
    from repro.analysis.serving import ServingRequest, execute_serving_request

    pinned = load_bitident()["serving_runs"][name]
    request = ServingRequest(**pinned["request"])
    result = execute_serving_request(request)
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    assert hashlib.sha256(blob.encode()).hexdigest() == pinned["result_sha256"]
    assert result["summary"]["cycles"] == pinned["cycles"]
    assert result["summary"]["completed"] == pinned["completed"]
    assert result["summary"]["missed"] == pinned["missed"]


def test_serving_pins_pin_their_fingerprints():
    # Frozen under pinned version strings so unrelated source edits do
    # not churn this file — only a deliberate request-schema change does.
    from repro.analysis.serving import ServingRequest

    document = load_bitident()
    for name, pinned in document["serving_runs"].items():
        request = ServingRequest(**pinned["request"])
        assert (
            request.fingerprint(
                document["pinned_version"],
                document["serving_pinned_version"],
            )
            == pinned["fingerprint_pinned"]
        ), name


# ----- the comparator itself -------------------------------------------------


def metric(value, paper=None, rel_tol=None, abs_tol=None):
    return {"value": value, "paper": paper, "rel_tol": rel_tol,
            "abs_tol": abs_tol}


def test_compare_flags_out_of_band_and_names_the_metric():
    golden = {
        "speedup": metric(2.0, paper=2.02, rel_tol=0.02),
        "gain": metric(0.05, abs_tol=0.02),
    }
    measured = {
        "speedup": metric(2.2),   # +10% — outside the 2% band
        "gain": metric(0.06),     # inside the ±0.02 band
    }
    failures, report = compare_metrics(golden, measured)
    assert failures == ["speedup"]
    assert "FAIL" in report and "PASS" in report
    # The report reads as a paper-vs-measured diff, not a bare assert.
    assert "golden" in report and "paper" in report
    assert "paper=   2.020" in report


def test_compare_flags_missing_and_extra_metrics():
    failures, report = compare_metrics(
        {"only_golden": metric(1.0, rel_tol=0.1)},
        {"only_measured": metric(1.0, rel_tol=0.1)},
    )
    assert sorted(failures) == ["only_golden", "only_measured"]
    assert "MISSING" in report


def test_band_semantics():
    assert allowed_band(metric(2.0, rel_tol=0.02)) == pytest.approx(0.04)
    assert allowed_band(metric(-2.0, rel_tol=0.02)) == pytest.approx(0.04)
    assert allowed_band(metric(0.05, abs_tol=0.02)) == pytest.approx(0.02)
    # abs_tol wins when both are present (gains sit near zero, where a
    # relative band collapses to nothing).
    assert allowed_band(metric(0.0, rel_tol=0.5, abs_tol=0.01)) == 0.01
    assert allowed_band(metric(1.0)) == 0.0
