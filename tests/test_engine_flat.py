"""The flat pipeline engine: dispatch, bit-identity, cache sharing.

``SMTConfig(backend=...)`` selects between the reference object engine
and :class:`repro.core.engine_flat.FlatSMTProcessor`, whose per-cycle
state lives in flat integer-indexed buffers.  The contract is absolute
bit-identity: ``tests/golden/bitident.json``'s ``flat_backend`` section
lists pinned configurations (full-detail and sampled, 1T and 8T) the
flat engine must hash exactly to, and the fingerprint exemption makes
both engines share one runcache slot.  ``backend="auto"`` upgrades to
the flat engine only when the optional compiled kernel is installed —
and must degrade cleanly (to the object engine, same bits) when the
import fails.
"""

import dataclasses
import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.analysis.runner import (
    Runner,
    RunRequest,
    execute_request,
    result_to_dict,
)
from repro.core import SMTConfig, SMTProcessor
from repro.core.engine_flat import (
    COMPILED,
    FlatSMTProcessor,
    FlatThreadContext,
    resolve_flat_engine,
)
from repro.memory import PerfectMemory
from repro.workloads import build_workload_traces

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "bitident.json"
)

with open(GOLDEN_PATH) as _handle:
    GOLDEN = json.load(_handle)

#: All pinned entries by name, regardless of serial/sharded grouping.
ENTRIES = dict(GOLDEN["runs"])
ENTRIES.update(GOLDEN.get("sharded_runs", {}))

SCALE = 1.2e-5


def request_of(name: str, **overrides) -> RunRequest:
    payload = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in ENTRIES[name]["request"].items()
    }
    payload.update(overrides)
    return RunRequest(**payload)


def canonical_sha256(result) -> str:
    blob = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def build(config: SMTConfig) -> SMTProcessor:
    return SMTProcessor(
        config,
        PerfectMemory(),
        build_workload_traces(config.isa, scale=SCALE),
    )


class TestDispatch:
    """SMTProcessor construction routes to the engine backend= names."""

    def test_object_backend_is_the_reference_engine(self):
        processor = build(SMTConfig(isa="mmx", backend="object"))
        assert type(processor) is SMTProcessor

    def test_flat_backend_is_the_flat_engine(self):
        processor = build(SMTConfig(isa="mmx", backend="flat"))
        assert type(processor) is FlatSMTProcessor
        assert all(
            type(ctx) is FlatThreadContext for ctx in processor.threads
        )

    def test_auto_follows_compiled_state(self):
        processor = build(SMTConfig(isa="mmx", backend="auto"))
        expected = FlatSMTProcessor if COMPILED else SMTProcessor
        assert type(processor) is expected

    def test_sanitize_forces_the_object_engine(self):
        processor = build(
            SMTConfig(isa="mmx", backend="flat", sanitize=True)
        )
        assert type(processor) is SMTProcessor

    def test_observe_forces_the_object_engine(self):
        processor = build(
            SMTConfig(isa="mmx", backend="flat", observe=True)
        )
        assert type(processor) is SMTProcessor

    def test_flat_engine_refuses_sanitize_and_observe_directly(self):
        # The dispatch fallback above is the supported path; building
        # the flat engine against a sanitizing/observing config by hand
        # must fail loudly rather than silently drop events.
        traces = build_workload_traces("mmx", scale=SCALE)
        for config in (
            SMTConfig(isa="mmx", sanitize=True),
            SMTConfig(isa="mmx", observe=True),
        ):
            with pytest.raises(ValueError, match="object engine"):
                FlatSMTProcessor(config, PerfectMemory(), traces)

    def test_resolver_contract(self):
        assert resolve_flat_engine("flat") is FlatSMTProcessor
        assert resolve_flat_engine("object") is None
        assert resolve_flat_engine("auto") is (
            FlatSMTProcessor if COMPILED else None
        )

    def test_backend_validated_at_config(self):
        with pytest.raises(ValueError, match="backend"):
            SMTConfig(backend="vectorized")

    def test_subclass_construction_not_redirected(self):
        # __new__ only redirects SMTProcessor itself; instantiating the
        # flat engine (or any subclass) directly must stay literal.
        processor = FlatSMTProcessor(
            SMTConfig(isa="mmx", backend="object"),
            PerfectMemory(),
            build_workload_traces("mmx", scale=SCALE),
        )
        assert type(processor) is FlatSMTProcessor


class TestBitIdentity:
    """backend='flat' reproduces the pinned golden hashes exactly."""

    @pytest.mark.parametrize("name", GOLDEN["flat_backend"]["runs"])
    def test_full_detail_pins(self, name):
        result = execute_request(request_of(name, backend="flat"))
        entry = ENTRIES[name]
        assert result.cycles == entry["cycles"], name
        assert canonical_sha256(result) == entry["result_sha256"], (
            f"{name}: flat engine diverged from the pinned object-engine "
            "hash"
        )

    @pytest.mark.parametrize("name", GOLDEN["flat_backend"]["sharded_runs"])
    def test_sampled_pins_serial_and_sharded(self, name, tmp_path):
        entry = ENTRIES[name]
        serial = execute_request(request_of(name, backend="flat"))
        assert canonical_sha256(serial) == entry["result_sha256"], (
            f"{name}: flat engine (serial) diverged from the pinned hash"
        )
        runner = Runner(
            cache_dir=str(tmp_path / "cache"), window_jobs=2, backend="flat"
        )
        sharded = runner.run(request_of(name))
        assert canonical_sha256(sharded) == entry["result_sha256"], (
            f"{name}: flat engine (window-sharded) diverged from the "
            "pinned hash"
        )

    def test_pins_cover_both_isas_and_sampling(self):
        pins = GOLDEN["flat_backend"]
        requests = [
            request_of(name) for name in pins["runs"] + pins["sharded_runs"]
        ]
        assert {r.isa for r in requests} == {"mmx", "mom"}
        assert {r.n_threads for r in requests} == {1, 8}
        assert any(r.sampling for r in requests)
        assert any(not r.sampling for r in requests)


class TestCacheSharing:
    """Both engines address the same runcache slot."""

    def test_flat_result_served_warm_to_object_request(self, tmp_path):
        cache = str(tmp_path / "cache")
        request = RunRequest(isa="mmx", n_threads=2, scale=SCALE)

        cold = Runner(cache_dir=cache, backend="flat")
        cold.run(request)
        assert cold.stats.simulated == 1

        warm = Runner(cache_dir=cache, backend="object")
        result = warm.run(request)
        assert warm.stats.simulated == 0, (
            "object-backend runner resimulated a point the flat engine "
            "already cached — backend leaked into the fingerprint"
        )
        assert warm.stats.disk_hits == 1
        assert canonical_sha256(result) == canonical_sha256(
            execute_request(dataclasses.replace(request, backend="object"))
        )

    def test_runner_override_rewrites_requests(self, tmp_path):
        # The Runner-level backend knob is a schedule override like
        # window_jobs: applied to every request, invisible to identity.
        runner = Runner(cache_dir=str(tmp_path / "cache"), backend="flat")
        request = RunRequest(isa="mmx", n_threads=1, scale=SCALE)
        runner.run(request)
        assert runner.stats.simulated == 1


class TestAutoFallback:
    """backend='auto' degrades cleanly when the compiled import fails."""

    PIN = "mmx/1T/conventional/rr"

    def _run_child(self, prelude: str) -> dict:
        entry = ENTRIES[self.PIN]
        script = prelude + (
            "\n"
            "import json, sys\n"
            "from repro.core.engine_flat import COMPILED, "
            "FlatSMTProcessor, resolve_flat_engine\n"
            "from repro.analysis.runner import RunRequest, "
            "execute_request, result_to_dict\n"
            "import hashlib\n"
            f"request = RunRequest(**{dict(entry['request'])!r}, "
            "backend='auto')\n"
            "result = execute_request(request)\n"
            "blob = json.dumps(result_to_dict(result), sort_keys=True, "
            "separators=(',', ':'))\n"
            "print(json.dumps({\n"
            "    'compiled': COMPILED,\n"
            "    'auto_engine': getattr(resolve_flat_engine('auto'), "
            "'__name__', None),\n"
            "    'sha256': hashlib.sha256(blob.encode()).hexdigest(),\n"
            "}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src")
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    def test_auto_without_compiled_module_uses_object_engine(self):
        # The container has no compiled _flatstep_c, so a plain import
        # sees COMPILED=False and auto must keep the reference engine —
        # and still reproduce the pinned hash.
        report = self._run_child("")
        assert report["compiled"] is False
        assert report["auto_engine"] is None
        assert report["sha256"] == ENTRIES[self.PIN]["result_sha256"]

    def test_auto_with_compiled_module_uses_flat_engine(self):
        # Simulate an installed compiled kernel: publish the pure-Python
        # kernel under the compiled module name before engine_flat
        # imports.  auto must upgrade to the flat engine and the pinned
        # hash must not move.
        prelude = (
            "import sys, types\n"
            "import repro.core._flatstep as _flatstep\n"
            "shim = types.ModuleType('repro.core._flatstep_c')\n"
            "shim.flat_step = _flatstep.flat_step\n"
            "sys.modules['repro.core._flatstep_c'] = shim\n"
        )
        report = self._run_child(prelude)
        assert report["compiled"] is True
        assert report["auto_engine"] == "FlatSMTProcessor"
        assert report["sha256"] == ENTRIES[self.PIN]["result_sha256"]
