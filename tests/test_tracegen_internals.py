"""Unit tests for trace-generation internals (builder, regions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass, reg_class
from repro.tracegen.builder import (
    AddressSpace,
    FractionAccumulator,
    TraceBuilder,
)
from repro.tracegen.mixes import WORKLOAD_MIXES
from repro.tracegen.synthetic import ScalarRegion
from repro.tracegen.vectorizer import FpKernelRegion, KernelRegion

import random


class TestFractionAccumulator:
    @given(st.floats(0.0, 8.0), st.integers(10, 2000))
    @settings(max_examples=40)
    def test_long_run_rate_exact(self, rate, n):
        acc = FractionAccumulator(rate)
        total = sum(acc.take() for __ in range(n))
        # The carried fraction keeps the deficit under one op; the
        # repeated additions inside the accumulator and the single
        # multiplication here round differently, so the bound is one
        # op plus that float discrepancy (e.g. rate=1.9, n=10 sums to
        # 18 against an exact 19.0 — a deficit of exactly 1.0).
        assert abs(total - rate * n) <= 1.0 + 1e-6 * n

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FractionAccumulator(-0.1)

    def test_integer_rate_every_time(self):
        acc = FractionAccumulator(3.0)
        assert [acc.take() for __ in range(4)] == [3, 3, 3, 3]


class TestAddressSpace:
    def _space(self, **kw):
        defaults = dict(
            rng=random.Random(1),
            scalar_working_set=16 << 10,
            kernel_working_set=128 << 10,
        )
        defaults.update(kw)
        return AddressSpace(**defaults)

    def test_scalar_addresses_in_known_regions(self):
        space = self._space()
        for __ in range(500):
            addr = space.scalar_addr()
            assert (
                AddressSpace.STACK_BASE
                <= addr
                < AddressSpace.HEAP_BASE + AddressSpace.HEAP_SIZE
            )

    def test_stream_tile_rewalks(self):
        space = self._space(tile_bytes=256, tile_passes=3)
        first_pass = [space.stream_addr(0, 8) for __ in range(32)]
        second_pass = [space.stream_addr(0, 8) for __ in range(32)]
        assert first_pass == second_pass        # same tile re-walked

    def test_tile_advances_after_passes(self):
        space = self._space(tile_bytes=256, tile_passes=2)
        passes = [[space.stream_addr(0, 8) for __ in range(32)] for __ in range(3)]
        assert passes[0] == passes[1]
        assert passes[2][0] == passes[0][0] + 256   # next tile

    def test_arrays_are_disjoint(self):
        space = self._space()
        a0 = space.stream_addr(0, 8)
        a1 = space.stream_addr(1, 8)
        assert abs(a0 - a1) >= AddressSpace.ARRAY_SPACING - (64 * 64)

    def test_cold_addr_sequential_never_repeats_within_region(self):
        space = self._space()
        addrs = [space.cold_addr(8) for __ in range(1000)]
        assert len(set(addrs)) == 1000
        assert addrs[1] - addrs[0] == 8

    def test_tile_validation(self):
        with pytest.raises(ValueError):
            self._space(tile_bytes=64)
        with pytest.raises(ValueError):
            self._space(tile_passes=0)


class TestTraceBuilder:
    def test_rejects_unknown_isa(self):
        with pytest.raises(ValueError):
            TraceBuilder("sse2", seed=0)

    def test_register_classes_match_op_types(self):
        builder = TraceBuilder("mom", seed=0)
        assert reg_class(builder.int_op().dst) is RegisterClass.INT
        assert reg_class(builder.fp_op().dst) is RegisterClass.FP
        assert reg_class(builder.mmx_op().dst) is RegisterClass.MMX
        assert reg_class(builder.mom_op(16).dst) is RegisterClass.STREAM
        assert (
            reg_class(builder.mom_op(16, reduce=True).dst) is RegisterClass.ACC
        )

    def test_reduce_op_reads_its_accumulator(self):
        builder = TraceBuilder("mom", seed=0)
        inst = builder.mom_op(16, reduce=True)
        assert inst.dst in inst.srcs        # read-modify-write dependence

    def test_pcs_monotone_without_explicit_pc(self):
        builder = TraceBuilder("mmx", seed=0)
        a = builder.int_op()
        b = builder.int_op()
        assert b.pc == a.pc + 4

    def test_explicit_pc_respected(self):
        builder = TraceBuilder("mmx", seed=0)
        inst = builder.int_op(pc=0x4242_0000)
        assert inst.pc == 0x4242_0000

    def test_sources_come_from_recent_writers(self):
        builder = TraceBuilder("mmx", seed=0)
        written = {builder.int_op().dst for __ in range(50)}
        inst = builder.int_op()
        seeded = {builder._recent[RegisterClass.INT][0]}
        for src in inst.srcs:
            assert src in written | seeded or reg_class(src) is RegisterClass.INT

    def test_branch_defaults_to_backward_target(self):
        builder = TraceBuilder("mmx", seed=0)
        for __ in range(40):
            builder.int_op()
        branch = builder.branch(taken=True)
        assert branch.target < branch.pc


class TestScalarRegion:
    def test_budgets_met_exactly_for_int(self):
        builder = TraceBuilder("mmx", seed=2)
        region = ScalarRegion(builder, n_blocks=32)
        emitted = region.emit(n_int=300, n_fp=10, n_mem=80)
        assert emitted["int"] == 300
        assert emitted["fp"] == 10
        assert emitted["mem"] == 80

    def test_emits_branches_within_int_budget(self):
        builder = TraceBuilder("mmx", seed=2)
        region = ScalarRegion(builder, n_blocks=32)
        region.emit(n_int=300, n_fp=0, n_mem=0)
        branches = [i for i in builder.instructions if i.is_branch]
        assert 10 < len(branches) < 150

    def test_needs_two_blocks(self):
        builder = TraceBuilder("mmx", seed=2)
        with pytest.raises(ValueError):
            ScalarRegion(builder, n_blocks=1)


class TestKernelRegion:
    def test_mmx_burst_emits_simd_and_loop_control(self):
        mix = WORKLOAD_MIXES["mpeg2enc"]
        builder = TraceBuilder("mmx", seed=3)
        region = KernelRegion(builder, mix)
        region.emit_burst(64)
        ops = [i.op for i in builder.instructions]
        assert Opcode.MMX_ALU in ops
        assert Opcode.MMX_LOAD in ops
        assert Opcode.BRANCH in ops

    def test_mom_burst_emits_streams(self):
        mix = WORKLOAD_MIXES["mpeg2enc"]
        builder = TraceBuilder("mom", seed=3)
        region = KernelRegion(builder, mix)
        region.emit_burst(64)
        streams = [i for i in builder.instructions if i.stream_length > 1]
        assert streams
        assert all(s.stream_length == mix.stream_length for s in streams)

    def test_mom_emits_far_fewer_instructions(self):
        mix = WORKLOAD_MIXES["mpeg2enc"]
        counts = {}
        for isa in ("mmx", "mom"):
            builder = TraceBuilder(isa, seed=3)
            KernelRegion(builder, mix).emit_burst(128)
            counts[isa] = len(builder.instructions)
        assert counts["mom"] < counts["mmx"] / 5

    def test_rejects_non_vectorizable_program(self):
        builder = TraceBuilder("mmx", seed=3)
        with pytest.raises(ValueError):
            KernelRegion(builder, WORKLOAD_MIXES["mesa"])

    def test_fp_kernel_identical_instruction_count_either_isa(self):
        counts = {}
        for isa in ("mmx", "mom"):
            builder = TraceBuilder(isa, seed=4)
            FpKernelRegion(builder).emit_burst(50)
            counts[isa] = len(builder.instructions)
        assert counts["mmx"] == counts["mom"]

    def test_fp_kernel_reports_emission(self):
        builder = TraceBuilder("mmx", seed=4)
        emitted = FpKernelRegion(builder).emit_burst(10)
        assert emitted["fp"] == 10 * FpKernelRegion.FP_PER_ITER
        assert emitted["int"] == 10 * (FpKernelRegion.INT_PER_ITER + 1)
