"""Tests for the CMP extension (shared L2, private L1s, lockstep cores)."""

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.core.cmp import CMP_L1, CmpSystem, cmp_core_config
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces

SCALE = 1.2e-5


@pytest.fixture(scope="module")
def traces():
    return build_workload_traces("mmx", scale=SCALE)


class TestCoreConfig:
    def test_core_is_narrow(self):
        config = cmp_core_config("mmx")
        assert config.n_threads == 1
        assert config.fetch_width == 4
        assert config.issue_int == 2
        assert config.dispatch_width == 4

    def test_private_l1_is_half_size(self):
        assert CMP_L1.size == 16 << 10
        assert CMP_L1.assoc == 1

    def test_mom_core_single_simd_issue(self):
        config = cmp_core_config("mom")
        assert config.issue_simd == 1


class TestCmpSystem:
    def test_completes_workload(self, traces):
        result = CmpSystem("mmx", 2, build_workload_traces("mmx", scale=SCALE)).run()
        assert result.program_completions == 8
        assert result.fetch_policy == "cmp"
        assert result.eipc > 0.5

    def test_cores_share_l2(self, traces):
        system = CmpSystem("mmx", 2, build_workload_traces("mmx", scale=SCALE))
        assert all(core.memory.l2 is system.l2 for core in system.cores)
        assert all(core.memory.dram is system.dram for core in system.cores)

    def test_cores_have_private_l1(self):
        system = CmpSystem("mmx", 2, build_workload_traces("mmx", scale=SCALE))
        l1s = {id(core.memory.l1) for core in system.cores}
        assert len(l1s) == 2

    def test_initial_programs_follow_workload_order(self):
        system = CmpSystem("mmx", 4, build_workload_traces("mmx", scale=SCALE))
        names = [core.threads[0].trace.name for core in system.cores]
        assert names == ["mpeg2enc", "gsmdec", "mpeg2dec", "gsmenc"]

    def test_more_cores_more_throughput(self):
        eipc = {}
        for cores in (2, 4):
            result = CmpSystem(
                "mmx", cores, build_workload_traces("mmx", scale=SCALE)
            ).run()
            eipc[cores] = result.eipc
        assert eipc[4] > 1.4 * eipc[2]

    def test_private_l1_hit_rate_beats_shared_smt(self):
        cmp_result = CmpSystem(
            "mmx", 4, build_workload_traces("mmx", scale=SCALE)
        ).run()
        smt_result = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=4),
            ConventionalHierarchy(),
            build_workload_traces("mmx", scale=SCALE),
        ).run()
        # No inter-thread interference in private caches.
        assert cmp_result.memory.l1.hit_rate > smt_result.memory.l1.hit_rate

    def test_single_wide_core_beats_single_cmp_core(self):
        # The paper's Amdahl argument for SMT: with little TLP, one wide
        # core outruns a narrow CMP core.
        narrow = CmpSystem(
            "mmx", 1, build_workload_traces("mmx", scale=SCALE)
        ).run()
        wide = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=1),
            ConventionalHierarchy(),
            build_workload_traces("mmx", scale=SCALE),
        ).run()
        assert wide.eipc > narrow.eipc

    def test_core_count_validated(self, traces):
        with pytest.raises(ValueError):
            CmpSystem("mmx", 0, traces)

    def test_deterministic(self):
        results = [
            CmpSystem("mom", 2, build_workload_traces("mom", scale=SCALE)).run()
            for __ in range(2)
        ]
        assert results[0].cycles == results[1].cycles
        assert (
            results[0].committed_instructions
            == results[1].committed_instructions
        )
