"""Tests for the CMP extension (shared L2, private L1s, lockstep cores)."""

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.core.cmp import (
    CMP_CORE_RESOURCES,
    CMP_L1,
    CmpSystem,
    cmp_core_config,
    cmp_core_resources,
)
from repro.core.fetch import FetchPolicy
from repro.memory import ConventionalHierarchy
from repro.workloads import build_workload_traces

SCALE = 1.2e-5


@pytest.fixture(scope="module")
def traces():
    return build_workload_traces("mmx", scale=SCALE)


class TestCoreConfig:
    def test_core_is_narrow(self):
        config = cmp_core_config("mmx")
        assert config.n_threads == 1
        assert config.fetch_width == 4
        assert config.issue_int == 2
        assert config.dispatch_width == 4

    def test_private_l1_is_half_size(self):
        assert CMP_L1.size == 16 << 10
        assert CMP_L1.assoc == 1

    def test_mom_core_single_simd_issue(self):
        config = cmp_core_config("mom")
        assert config.issue_simd == 1


class TestCmpSystem:
    def test_completes_workload(self, traces):
        result = CmpSystem("mmx", 2, build_workload_traces("mmx", scale=SCALE)).run()
        assert result.program_completions == 8
        assert result.fetch_policy == "cmp"
        assert result.eipc > 0.5

    def test_cores_share_l2(self, traces):
        system = CmpSystem("mmx", 2, build_workload_traces("mmx", scale=SCALE))
        assert all(core.memory.l2 is system.l2 for core in system.cores)
        assert all(core.memory.dram is system.dram for core in system.cores)

    def test_cores_have_private_l1(self):
        system = CmpSystem("mmx", 2, build_workload_traces("mmx", scale=SCALE))
        l1s = {id(core.memory.l1) for core in system.cores}
        assert len(l1s) == 2

    def test_initial_programs_follow_workload_order(self):
        system = CmpSystem("mmx", 4, build_workload_traces("mmx", scale=SCALE))
        names = [core.threads[0].trace.name for core in system.cores]
        assert names == ["mpeg2enc", "gsmdec", "mpeg2dec", "gsmenc"]

    def test_more_cores_more_throughput(self):
        eipc = {}
        for cores in (2, 4):
            result = CmpSystem(
                "mmx", cores, build_workload_traces("mmx", scale=SCALE)
            ).run()
            eipc[cores] = result.eipc
        assert eipc[4] > 1.4 * eipc[2]

    def test_private_l1_hit_rate_beats_shared_smt(self):
        cmp_result = CmpSystem(
            "mmx", 4, build_workload_traces("mmx", scale=SCALE)
        ).run()
        smt_result = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=4),
            ConventionalHierarchy(),
            build_workload_traces("mmx", scale=SCALE),
        ).run()
        # No inter-thread interference in private caches.
        assert cmp_result.memory.l1.hit_rate > smt_result.memory.l1.hit_rate

    def test_single_wide_core_beats_single_cmp_core(self):
        # The paper's Amdahl argument for SMT: with little TLP, one wide
        # core outruns a narrow CMP core.
        narrow = CmpSystem(
            "mmx", 1, build_workload_traces("mmx", scale=SCALE)
        ).run()
        wide = SMTProcessor(
            SMTConfig(isa="mmx", n_threads=1),
            ConventionalHierarchy(),
            build_workload_traces("mmx", scale=SCALE),
        ).run()
        assert wide.eipc > narrow.eipc

    def test_core_count_validated(self, traces):
        with pytest.raises(ValueError):
            CmpSystem("mmx", 0, traces)

    def test_deterministic(self):
        results = [
            CmpSystem("mom", 2, build_workload_traces("mom", scale=SCALE)).run()
            for __ in range(2)
        ]
        assert results[0].cycles == results[1].cycles
        assert (
            results[0].committed_instructions
            == results[1].committed_instructions
        )


class TestResourceScaling:
    def test_single_context_is_the_base_core(self):
        assert cmp_core_resources(1) is CMP_CORE_RESOURCES

    def test_totals_grow_share_shrinks(self):
        def totals(resources):
            return (
                sum(resources.rename_regs.values()),
                sum(resources.queue_sizes.values()),
                resources.graduation_window,
            )

        previous = None
        for contexts in (1, 2, 4, 8):
            resources = cmp_core_resources(contexts)
            current = totals(resources)
            if previous is not None:
                # Totals grow monotonically with added contexts...
                assert all(c >= p for c, p in zip(current, previous))
                # ...but sublinearly: the per-context share shrinks.
                assert all(
                    c / contexts < p / (contexts // 2)
                    for c, p in zip(current, previous)
                )
            previous = current

    def test_widths_fixed_across_contexts(self):
        narrow = cmp_core_config("mmx", 1)
        wide = cmp_core_config("mmx", 4)
        assert wide.n_threads == 4
        for name in ("fetch_width", "dispatch_width", "issue_int",
                     "issue_simd", "commit_width"):
            assert getattr(wide, name) == getattr(narrow, name)
        assert (
            sum(wide.resources.rename_regs.values())
            > sum(narrow.resources.rename_regs.values())
        )

    def test_context_count_validated(self):
        with pytest.raises(ValueError):
            cmp_core_resources(0)


class TestLockstepEquivalence:
    def test_one_core_system_matches_standalone_core(self):
        """A 1-core, 1-context CmpSystem is exactly one CMP core: the
        lockstep wrapper must add zero cycles and zero commits."""
        system = CmpSystem(
            "mmx", 1, build_workload_traces("mmx", scale=SCALE),
            warmup_fraction=0.0,
        )
        system_result = system.run()
        standalone = SMTProcessor(
            cmp_core_config("mmx"),
            ConventionalHierarchy(n_ports=2, l1_config=CMP_L1),
            build_workload_traces("mmx", scale=SCALE),
            fetch_policy=FetchPolicy.RR,
            warmup_fraction=0.0,
        )
        standalone_result = standalone.run()
        assert system_result.cycles == standalone_result.cycles
        assert (
            system_result.committed_instructions
            == standalone_result.committed_instructions
        )
        assert system_result.eipc == pytest.approx(standalone_result.eipc)


class TestCmpSmt:
    def test_contexts_per_core_runs_and_reports_total_threads(self):
        result = CmpSystem(
            "mmx", 2, build_workload_traces("mmx", scale=SCALE),
            contexts_per_core=2,
        ).run()
        assert result.program_completions == 8
        assert result.n_threads == 4

    def test_cmp_smt_beats_pure_cmp_at_equal_cores(self):
        # Two extra contexts per core hide stalls the single-context
        # cores eat; with the same core count throughput must not drop.
        single = CmpSystem(
            "mmx", 2, build_workload_traces("mmx", scale=SCALE)
        ).run()
        smt = CmpSystem(
            "mmx", 2, build_workload_traces("mmx", scale=SCALE),
            contexts_per_core=2,
        ).run()
        assert smt.eipc > single.eipc

    def test_decoupled_memory_kind(self):
        system = CmpSystem(
            "mom", 2, build_workload_traces("mom", scale=SCALE),
            memory="decoupled",
        )
        assert all(core.memory.l2 is system.l2 for core in system.cores)
        assert all(core.memory.dram is system.dram for core in system.cores)
        assert system.run().program_completions == 8

    def test_memory_kind_validated(self):
        with pytest.raises(ValueError, match="memory kind"):
            CmpSystem(
                "mmx", 2, build_workload_traces("mmx", scale=SCALE),
                memory="perfect",
            )


class TestSanitizeAndObserve:
    def test_sanitized_run_is_clean(self):
        result = CmpSystem(
            "mmx", 2, build_workload_traces("mmx", scale=SCALE),
            sanitize=True,
        ).run()
        assert result.program_completions == 8

    def test_observe_metrics_merges_per_core_snapshots(self):
        system = CmpSystem(
            "mmx", 2, build_workload_traces("mmx", scale=SCALE),
            observe="metrics",
        )
        result = system.run()
        assert result.observability is not None
        snapshots = result.observability["cores"]
        assert len(snapshots) == 2
        for snapshot in snapshots:
            assert isinstance(snapshot["metrics"], dict)
            assert snapshot["metrics"], "metrics-mode snapshots carry data"

    def test_unobserved_run_reports_no_observability(self):
        result = CmpSystem(
            "mmx", 2, build_workload_traces("mmx", scale=SCALE)
        ).run()
        assert result.observability is None

    def test_observer_instances_rejected(self):
        from repro.obs.events import PipelineObserver

        with pytest.raises(ValueError, match="observer"):
            CmpSystem(
                "mmx", 2, build_workload_traces("mmx", scale=SCALE),
                observe=PipelineObserver(),
            )
