"""Cached serving driver tests: fingerprints, runcache, scenario report.

The serving analysis layer must honour the same contracts as the
figure runner: results are pure functions of the request, cold and warm
sweeps are bit-identical, parallel execution changes nothing, and every
cache hit is visible in the runner stats.
"""

import json

import pytest

from repro.analysis.runner import Runner
from repro.analysis.serving import (
    SERVING_FORMAT,
    ServingRequest,
    execute_serving_request,
    run_serving_batch,
    run_serving_scenario,
    serving_code_version,
)

SCALE = 1.2e-5


def small_request(**overrides) -> ServingRequest:
    fields = dict(
        isa="mmx", arch="cmp", cores=2, contexts=2, policy="rr",
        n_streams=6, scale=SCALE,
    )
    fields.update(overrides)
    return ServingRequest(**fields)


class TestServingRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", arch="vliw")
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", arch="smt", cores=2)
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", memory="perfect")
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", policy="fifo")
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", mix="bulk")
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", n_streams=0)
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", load=0.0)
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", slack=-1.0)
        with pytest.raises(ValueError):
            ServingRequest(isa="mmx", queue_limit=-1)

    def test_describe_request_fields(self):
        request = small_request(policy="least")
        assert request.n_threads == 4
        assert request.fetch_policy == "serve-least"

    def test_fingerprint_is_stable_and_field_sensitive(self):
        base = small_request()
        assert base.fingerprint() == base.fingerprint()
        assert base.fingerprint().startswith("serving-")
        for changed in (
            small_request(isa="mom"),
            small_request(policy="least"),
            small_request(n_streams=7),
            small_request(load=0.9),
            small_request(seed=1),
        ):
            assert changed.fingerprint() != base.fingerprint()

    def test_fingerprint_tracks_both_version_strings(self):
        request = small_request()
        baseline = request.fingerprint("codev", "servingv")
        assert request.fingerprint("codev2", "servingv") != baseline
        assert request.fingerprint("codev", "servingv2") != baseline

    def test_serving_code_version_is_cached_and_distinct(self):
        version = serving_code_version()
        assert version == serving_code_version()
        assert len(version) == 40


class TestCacheDiscipline:
    def test_cold_warm_bit_identity(self, tmp_path):
        request = small_request()
        cold_runner = Runner(cache_dir=str(tmp_path))
        cold = run_serving_batch([request], cold_runner)[request]
        assert cold_runner.stats.simulated == 1

        warm_runner = Runner(cache_dir=str(tmp_path))
        warm = run_serving_batch([request], warm_runner)[request]
        assert warm_runner.stats.simulated == 0
        assert warm_runner.stats.disk_hits == 1
        assert json.dumps(cold, sort_keys=True) == json.dumps(
            warm, sort_keys=True
        )

    def test_memo_and_dedup(self):
        runner = Runner()
        request = small_request()
        first = run_serving_batch([request, request], runner)
        assert runner.stats.simulated == 1
        assert runner.stats.deduplicated == 1
        second = run_serving_batch([request], runner)
        assert runner.stats.memo_hits == 1
        assert runner.stats.simulated == 1
        assert first[request] == second[request]

    def test_serial_equals_parallel(self, tmp_path):
        requests = [small_request(), small_request(isa="mom")]
        serial = run_serving_batch(requests, Runner())
        parallel_runner = Runner(jobs=2, cache_dir=str(tmp_path))
        parallel = run_serving_batch(requests, parallel_runner)
        assert parallel_runner.stats.simulated == 2
        for request in requests:
            assert json.dumps(serial[request], sort_keys=True) == json.dumps(
                parallel[request], sort_keys=True
            )

    def test_result_carries_provenance(self):
        result = execute_serving_request(small_request())
        assert result["provenance"]["serving_format"] == SERVING_FORMAT
        assert result["provenance"]["n_slots"] == 4
        assert result["provenance"]["mean_interarrival"] >= 1


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_serving_scenario(
            scale=SCALE, runner=Runner(), n_streams=6
        )

    def test_covers_the_full_grid(self, scenario):
        assert scenario.name == "serving"
        # ISA x arch-point x memory x policy.
        assert len(scenario.measured) == 2 * 2 * 2 * 3
        for key, point in scenario.measured.items():
            isa, arch, memory, policy = key.split("/")
            assert isa in ("mmx", "mom")
            assert arch in ("smt-8T", "cmp-4x2T")
            assert point["streams_per_mcycle"] > 0

    def test_report_quotes_policies_and_architectures(self, scenario):
        assert "Serving capacity" in scenario.report
        assert "Admission policy comparison" in scenario.report
        for token in ("smt-8T", "cmp-4x2T", "rr", "least", "affinity"):
            assert token in scenario.report
        assert "best admission policy" in scenario.report

    def test_scenario_is_deterministic(self, scenario):
        again = run_serving_scenario(
            scale=SCALE, runner=Runner(), n_streams=6
        )
        assert json.dumps(scenario.measured, sort_keys=True) == json.dumps(
            again.measured, sort_keys=True
        )
