"""Tests for trace serialization and the trace cache."""

import pytest

from repro.core import SMTConfig, SMTProcessor
from repro.memory import PerfectMemory
from repro.tracegen.program import build_program_trace
from repro.tracegen.serialize import TraceCache, load_trace, save_trace

SCALE = 1.2e-5


@pytest.fixture()
def trace():
    return build_program_trace("gsmenc", "mom", scale=SCALE)


class TestRoundTrip:
    def test_all_fields_preserved(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.name == trace.name
        assert loaded.isa == trace.isa
        assert loaded.mmx_equivalent == trace.mmx_equivalent
        assert len(loaded) == len(trace)
        for a, b in zip(trace.instructions, loaded.instructions):
            assert a.op == b.op
            assert a.pc == b.pc
            assert a.dst == b.dst
            assert a.srcs == b.srcs
            assert a.mem_addr == b.mem_addr
            assert a.stream_length == b.stream_length
            assert a.stride == b.stride
            assert a.taken == b.taken
            assert a.target == b.target

    def test_loaded_trace_simulates_identically(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        results = []
        for t in (trace, loaded):
            processor = SMTProcessor(
                SMTConfig(isa="mom", n_threads=1),
                PerfectMemory(),
                [t],
                completions_target=1,
                warmup_fraction=0.0,
            )
            results.append(processor.run())
        assert results[0].cycles == results[1].cycles
        assert (
            results[0].committed_instructions
            == results[1].committed_instructions
        )

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("hello world\n")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestTraceCache:
    def test_cache_generates_then_reuses(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        first = cache.get("gsmdec", "mmx", SCALE)
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        second = cache.get("gsmdec", "mmx", SCALE)
        assert len(list(tmp_path.iterdir())) == 1
        assert len(first) == len(second)
        assert first.expanded_length == second.expanded_length

    def test_distinct_keys_distinct_files(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.get("gsmdec", "mmx", SCALE)
        cache.get("gsmdec", "mom", SCALE)
        cache.get("gsmdec", "mmx", SCALE, seed=1)
        assert len(list(tmp_path.iterdir())) == 3
